(** Four-valued bit vectors with Verilog-style operator semantics.

    A vector has a fixed positive width; index 0 is the least
    significant bit.  Arithmetic and relational operators return
    all-[X] / [X] whenever an input bit is undefined, matching the
    pessimistic semantics of IEEE-1364 expressions.  Vectors are
    immutable. *)

type t

val width : t -> int

val create : int -> Bit.t -> t
(** [create w b] is a [w]-wide vector with every bit [b]. *)

val zero : int -> t
val ones : int -> t
val all_x : int -> t
val all_z : int -> t

val of_int : width:int -> int -> t
(** Truncates to [width] low bits.  @raise Invalid_argument on
    non-positive width or negative value. *)

val to_int : t -> int option
(** [None] if any bit is undefined or the width exceeds 62 bits. *)

val to_int_exn : t -> int

val of_bits : Bit.t list -> t
(** Head of the list is the {e most} significant bit, as written. *)

val of_string : string -> t
(** Parses ["10xz"] (MSB first).  Underscores are ignored. *)

val to_string : t -> string
(** MSB first, e.g. ["10xz"]. *)

val get : t -> int -> Bit.t
(** @raise Invalid_argument when out of range. *)

val set : t -> int -> Bit.t -> t
(** Functional update. *)

val equal : t -> t -> bool
(** Case equality ([===]): exact per-bit match including X and Z. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val is_defined : t -> bool

val resize : t -> int -> t
(** Zero-extends or truncates. *)

val concat : t -> t -> t
(** [concat hi lo]. *)

val select : t -> hi:int -> lo:int -> t

val insert : t -> lo:int -> t -> t
(** [insert t ~lo src] replaces bits [lo .. lo + width src - 1] of [t]
    with [src].  @raise Invalid_argument if the range does not fit. *)

val repeat : int -> t -> t

(* Bitwise (elementwise after zero-extension to max width). *)
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val resolve : t -> t -> t

(* Reductions. *)
val reduce_and : t -> Bit.t
val reduce_or : t -> Bit.t
val reduce_xor : t -> Bit.t

val to_bool : t -> bool option
(** Truth value of the vector as a condition: [Some true] if any bit
    is 1, [Some false] if all bits are 0, [None] when undefined bits
    prevent deciding. *)

(* Arithmetic: result width is the max operand width; all-X on any
   undefined input bit. *)
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

(* Relational: scalar results, [X] on undefined inputs. *)
val eq : t -> t -> Bit.t
val neq : t -> t -> Bit.t
val lt : t -> t -> Bit.t
val le : t -> t -> Bit.t
val gt : t -> t -> Bit.t
val ge : t -> t -> Bit.t

val case_eq : t -> t -> Bit.t
(** Verilog [===]: always defined. *)

(* Shifts by a defined amount; all-X when the amount is undefined. *)
val shift_left : t -> t -> t
val shift_right : t -> t -> t

val mux : sel:Bit.t -> t -> t -> t

(* Two-plane packed interop (the compiled simulator's fast path).
   Vectors no wider than [packed_width_limit] are stored as a value
   plane and an unknown plane in native ints: bit i is defined iff
   bit i of the unknown plane is 0, in which case the value plane
   holds its value; otherwise value=1 is X and value=0 is Z. *)

val packed_width_limit : int
(** Widths up to this (62) use the packed two-plane representation. *)

val planes : t -> (int * int) option
(** [(value, unknown)] planes of a packed vector, [None] if wide. *)

val of_planes : width:int -> int -> int -> t
(** [of_planes ~width v u] builds a packed vector from planes (masked
    to [width]).  @raise Invalid_argument when [width] is outside the
    packed range. *)
