(* Bit-sliced (transposed) batched bitvectors.

   [Bv] packs one vector into two plane words: bit i of the planes is
   design bit i.  [Bv_sliced] transposes that layout for batched
   simulation: a value holds ONE design bit per array slot, and each
   slot is a pair of plane words whose bit L is that design bit in
   lane L — up to [lanes_limit] independent simulations advancing
   word-parallel through every operation.

   Encoding per (bit, lane): defined iff the unknown-plane bit is 0,
   in which case the value-plane bit is the value; otherwise value=1
   is X and value=0 is Z — exactly [Bv]'s two-plane convention, so
   [Bv]'s word-parallel plane formulas apply unchanged, just per
   design bit instead of per vector.

   62 lanes keep every plane word a non-negative OCaml int (bit 62 is
   the sign bit of a 63-bit native int).  There is no wide fallback
   here and none is needed: the representation is an array over design
   bits, so any vector width works — width is the array length, and
   the per-word lane count never exceeds 62.  Slots beyond a value's
   width read as defined zero (zero-extension, as in [Bv]).

   One deliberate quirk is inherited from the scalar engines: a shift
   amount or dynamic index wider than [Bv.packed_width_limit] is
   treated as undefined ([Bv.to_int] returns [None] for the wide
   representation), so the sliced ops reproduce that, keeping lane L
   of every operation bit-identical to the scalar [Bv] op. *)

let lanes_limit = 62
let lmask = (1 lsl lanes_limit) - 1

type t = { w : int; v : int array; u : int array }

let width t = t.w

(* ------------------------------------------------------------------ *)
(* Construction and lane access                                       *)
(* ------------------------------------------------------------------ *)

let make w f =
  if w <= 0 then invalid_arg "Bv_sliced.make: width must be positive";
  let v = Array.make w 0 and u = Array.make w 0 in
  for j = 0 to w - 1 do
    let bv, bu = f j in
    v.(j) <- bv land lmask;
    u.(j) <- bu land lmask
  done;
  { w; v; u }

let broadcast bv =
  make (Bv.width bv) (fun j ->
      match Bv.get bv j with
      | Bit.L0 -> (0, 0)
      | Bit.L1 -> (lmask, 0)
      | Bit.X -> (lmask, lmask)
      | Bit.Z -> (0, lmask))

let of_lanes lanes =
  let n = Array.length lanes in
  if n = 0 || n > lanes_limit then
    invalid_arg "Bv_sliced.of_lanes: lane count out of range";
  let w = Bv.width lanes.(0) in
  Array.iter
    (fun l ->
      if Bv.width l <> w then
        invalid_arg "Bv_sliced.of_lanes: widths differ")
    lanes;
  (* Unoccupied lanes replicate lane 0, so every lane of the result is
     a valid simulation state. *)
  make w (fun j ->
      let v = ref 0 and u = ref 0 in
      for l = 0 to lanes_limit - 1 do
        let bit = Bv.get lanes.(if l < n then l else 0) j in
        (match bit with
         | Bit.L0 -> ()
         | Bit.L1 -> v := !v lor (1 lsl l)
         | Bit.X ->
           v := !v lor (1 lsl l);
           u := !u lor (1 lsl l)
         | Bit.Z -> u := !u lor (1 lsl l))
      done;
      (!v, !u))

let lane t l =
  if l < 0 || l >= lanes_limit then
    invalid_arg "Bv_sliced.lane: lane out of range";
  Bv.of_bits
    (List.init t.w (fun i ->
         let j = t.w - 1 - i in
         let v = (t.v.(j) lsr l) land 1 and u = (t.u.(j) lsr l) land 1 in
         if u = 0 then if v = 0 then Bit.L0 else Bit.L1
         else if v = 0 then Bit.Z
         else Bit.X))

let equal a b =
  a.w = b.w
  && (let ok = ref true in
      for j = 0 to a.w - 1 do
        if a.v.(j) <> b.v.(j) || a.u.(j) <> b.u.(j) then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Word access helpers                                                *)
(* ------------------------------------------------------------------ *)

(* Zero-extension: bits beyond the width are defined zero. *)
let vw t j = if j < t.w then t.v.(j) else 0
let uw t j = if j < t.w then t.u.(j) else 0

(* Lanes (of any word) carrying an undefined bit anywhere in [t]. *)
let unknown_lanes t =
  let x = ref 0 in
  for j = 0 to t.w - 1 do
    x := !x lor t.u.(j)
  done;
  !x

(* ------------------------------------------------------------------ *)
(* Structural ops                                                     *)
(* ------------------------------------------------------------------ *)

(* The ops below come in two forms: an [*_into dst] primitive that
   fills a caller-owned destination, and an allocating wrapper.  The
   batched engine compiles one destination buffer per expression node
   (widths are static), so a settle pass allocates nothing in its
   inner loop — the per-op [make]/[map2] closures this replaces were
   the dominant cost of a fully-live word pass. *)

let create w =
  if w <= 0 then invalid_arg "Bv_sliced.create: width must be positive";
  { w; v = Array.make w 0; u = Array.make w 0 }

let bad_dst name = invalid_arg ("Bv_sliced." ^ name ^ ": dst width mismatch")

let resize t w =
  if w <= 0 then invalid_arg "Bv_sliced.resize: width must be positive";
  if w = t.w then t
  else begin
    let v = Array.make w 0 and u = Array.make w 0 in
    let n = min w t.w in
    Array.blit t.v 0 v 0 n;
    Array.blit t.u 0 u 0 n;
    { w; v; u }
  end

let select_into dst t ~lo =
  if lo < 0 || lo + dst.w > t.w then
    invalid_arg "Bv_sliced.select_into: bad range";
  Array.blit t.v lo dst.v 0 dst.w;
  Array.blit t.u lo dst.u 0 dst.w

let select t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.w then
    invalid_arg "Bv_sliced.select: bad range";
  let dst = create (hi - lo + 1) in
  select_into dst t ~lo;
  dst

let concat hi lo =
  let w = hi.w + lo.w in
  let v = Array.make w 0 and u = Array.make w 0 in
  Array.blit lo.v 0 v 0 lo.w;
  Array.blit lo.u 0 u 0 lo.w;
  Array.blit hi.v 0 v lo.w hi.w;
  Array.blit hi.u 0 u lo.w hi.w;
  { w; v; u }

let insert t ~lo src =
  if lo < 0 || lo + src.w > t.w then invalid_arg "Bv_sliced.insert: bad range";
  let v = Array.copy t.v and u = Array.copy t.u in
  Array.blit src.v 0 v lo src.w;
  Array.blit src.u 0 u lo src.w;
  { w = t.w; v; u }

let repeat n t =
  if n <= 0 then invalid_arg "Bv_sliced.repeat: count must be positive";
  let w = n * t.w in
  let v = Array.make w 0 and u = Array.make w 0 in
  for i = 0 to n - 1 do
    Array.blit t.v 0 v (i * t.w) t.w;
    Array.blit t.u 0 u (i * t.w) t.w
  done;
  { w; v; u }

(* Lane-masked merge: lanes in [mask] from [a], the rest from [b] —
   the mutant-schemata select. *)
let merge_into ~mask dst a b =
  if dst.w <> max a.w b.w then bad_dst "merge_into";
  let nm = lnot mask in
  for j = 0 to dst.w - 1 do
    dst.v.(j) <- ((vw a j land mask) lor (vw b j land nm)) land lmask;
    dst.u.(j) <- ((uw a j land mask) lor (uw b j land nm)) land lmask
  done

let merge ~mask a b =
  let dst = create (max a.w b.w) in
  merge_into ~mask dst a b;
  dst

(* ------------------------------------------------------------------ *)
(* Bitwise logic (Bv's plane formulas, applied per design bit)        *)
(* ------------------------------------------------------------------ *)

let logand_into dst a b =
  if dst.w <> max a.w b.w then bad_dst "logand_into";
  for j = 0 to dst.w - 1 do
    let va = vw a j and ua = uw a j and vb = vw b j and ub = uw b j in
    let a0 = lnot va land lnot ua and b0 = lnot vb land lnot ub in
    let r1 = va land lnot ua land (vb land lnot ub) in
    let r0 = a0 lor b0 in
    let rx = lmask land lnot (r0 lor r1) in
    dst.v.(j) <- (r1 lor rx) land lmask;
    dst.u.(j) <- rx
  done

let logand a b =
  let dst = create (max a.w b.w) in
  logand_into dst a b;
  dst

let logor_into dst a b =
  if dst.w <> max a.w b.w then bad_dst "logor_into";
  for j = 0 to dst.w - 1 do
    let va = vw a j and ua = uw a j and vb = vw b j and ub = uw b j in
    let a1 = va land lnot ua and b1 = vb land lnot ub in
    let r1 = a1 lor b1 in
    let r0 = lnot va land lnot ua land (lnot vb land lnot ub) in
    let rx = lmask land lnot (r1 lor r0) in
    dst.v.(j) <- (r1 lor rx) land lmask;
    dst.u.(j) <- rx
  done

let logor a b =
  let dst = create (max a.w b.w) in
  logor_into dst a b;
  dst

let logxor_into dst a b =
  if dst.w <> max a.w b.w then bad_dst "logxor_into";
  for j = 0 to dst.w - 1 do
    let va = vw a j and ua = uw a j and vb = vw b j and ub = uw b j in
    let bd = lnot ua land lnot ub land lmask in
    let rx = lmask land lnot bd in
    dst.v.(j) <- ((va lxor vb) land bd lor rx) land lmask;
    dst.u.(j) <- rx
  done

let logxor a b =
  let dst = create (max a.w b.w) in
  logxor_into dst a b;
  dst

let lognot_into dst t =
  if dst.w <> t.w then bad_dst "lognot_into";
  for j = 0 to dst.w - 1 do
    let tv = t.v.(j) and tu = t.u.(j) in
    dst.v.(j) <- (lnot tv land lnot tu land lmask) lor tu;
    dst.u.(j) <- tu
  done

let lognot t =
  let dst = create t.w in
  lognot_into dst t;
  dst

let resolve a b =
  let w = max a.w b.w in
  let v = Array.make w 0 and u = Array.make w 0 in
  for j = 0 to w - 1 do
    let va = vw a j and ua = uw a j and vb = vw b j and ub = uw b j in
    let az = ua land lnot va and bz = ub land lnot vb in
    let only_az = az land lnot bz and only_bz = bz land lnot az in
    let both_z = az land bz in
    let neither = lmask land lnot (az lor bz) in
    let def_eq = lnot ua land lnot ub land lnot (va lxor vb) in
    let rx = neither land lnot def_eq in
    v.(j) <-
      (only_az land vb lor (only_bz land va)
       lor (neither land def_eq land va)
       lor rx)
      land lmask;
    u.(j) <-
      (only_az land ub lor (only_bz land ua) lor both_z lor rx) land lmask
  done;
  { w; v; u }

(* ------------------------------------------------------------------ *)
(* Reductions and truth masks                                         *)
(* ------------------------------------------------------------------ *)

let scalar_into dst v u =
  if dst.w <> 1 then bad_dst "scalar_into";
  dst.v.(0) <- v land lmask;
  dst.u.(0) <- u land lmask

let reduce_and_into dst t =
  let r0 = ref 0 and xl = ref 0 in
  for j = 0 to t.w - 1 do
    r0 := !r0 lor (lnot t.v.(j) land lnot t.u.(j) land lmask);
    xl := !xl lor t.u.(j)
  done;
  let r0 = !r0 in
  scalar_into dst (lmask land lnot r0) (!xl land lnot r0)

let reduce_and t =
  let dst = create 1 in
  reduce_and_into dst t;
  dst

let reduce_or_into dst t =
  let r1 = ref 0 and xl = ref 0 in
  for j = 0 to t.w - 1 do
    r1 := !r1 lor (t.v.(j) land lnot t.u.(j));
    xl := !xl lor t.u.(j)
  done;
  let rx = !xl land lnot !r1 in
  scalar_into dst (!r1 lor rx) rx

let reduce_or t =
  let dst = create 1 in
  reduce_or_into dst t;
  dst

let reduce_xor_into dst t =
  let par = ref 0 and xl = ref 0 in
  for j = 0 to t.w - 1 do
    par := !par lxor t.v.(j);
    xl := !xl lor t.u.(j)
  done;
  scalar_into dst ((!par land lnot !xl) lor !xl) !xl

let reduce_xor t =
  let dst = create 1 in
  reduce_xor_into dst t;
  dst

(* Truth value of a vector as a condition, per lane:
   [t1] = lanes where some bit is 1, [t0] = lanes where all bits are
   0, [tx] = lanes where undefined bits prevent deciding. *)
let truth t =
  let r1 = ref 0 and xl = ref 0 in
  for j = 0 to t.w - 1 do
    r1 := !r1 lor (t.v.(j) land lnot t.u.(j));
    xl := !xl lor t.u.(j)
  done;
  let t1 = !r1 in
  let tx = !xl land lnot t1 in
  (t1, lmask land lnot (t1 lor tx), tx)

(* ------------------------------------------------------------------ *)
(* Arithmetic (ripple carry across design bits; any undefined bit in  *)
(* a lane makes that lane all-X, as in Bv)                            *)
(* ------------------------------------------------------------------ *)

let add_into dst a b =
  if dst.w <> max a.w b.w then bad_dst "add_into";
  let xl = unknown_lanes a lor unknown_lanes b in
  let carry = ref 0 in
  for j = 0 to dst.w - 1 do
    let va = vw a j and vb = vw b j in
    let axb = va lxor vb in
    dst.v.(j) <- ((axb lxor !carry) land lnot xl lor xl) land lmask;
    dst.u.(j) <- xl;
    carry := (va land vb) lor (!carry land axb)
  done

let add a b =
  let dst = create (max a.w b.w) in
  add_into dst a b;
  dst

let sub_into dst a b =
  if dst.w <> max a.w b.w then bad_dst "sub_into";
  let xl = unknown_lanes a lor unknown_lanes b in
  (* a + ~b + 1, carry-in 1 on every lane. *)
  let carry = ref lmask in
  for j = 0 to dst.w - 1 do
    let va = vw a j and nb = lnot (vw b j) land lmask in
    let axb = va lxor nb in
    dst.v.(j) <- ((axb lxor !carry) land lnot xl lor xl) land lmask;
    dst.u.(j) <- xl;
    carry := (va land nb) lor (!carry land axb)
  done

let sub a b =
  let dst = create (max a.w b.w) in
  sub_into dst a b;
  dst

(* 0 - t, with the zero operand folded away. *)
let neg_into dst t =
  if dst.w <> t.w then bad_dst "neg_into";
  let xl = unknown_lanes t in
  let carry = ref lmask in
  for j = 0 to dst.w - 1 do
    let nb = lnot t.v.(j) land lmask in
    dst.v.(j) <- ((nb lxor !carry) land lnot xl lor xl) land lmask;
    dst.u.(j) <- xl;
    carry := !carry land nb
  done

let neg t =
  let dst = create t.w in
  neg_into dst t;
  dst

let mul_into dst a b =
  if dst.w <> max a.w b.w then bad_dst "mul_into";
  let w = dst.w in
  let xl = unknown_lanes a lor unknown_lanes b in
  (* Shift-add mod 2^w into the destination's value plane, the partial
     product of row i gated per lane on bit i of b. *)
  let acc = dst.v in
  Array.fill acc 0 w 0;
  for i = 0 to w - 1 do
    let cond = vw b i in
    if cond <> 0 then begin
      let carry = ref 0 in
      for j = i to w - 1 do
        let addend = vw a (j - i) land cond in
        let axb = acc.(j) lxor addend in
        let sum = (axb lxor !carry) land lmask in
        carry := (acc.(j) land addend) lor (!carry land axb);
        acc.(j) <- sum
      done
    end
  done;
  for j = 0 to w - 1 do
    dst.v.(j) <- (acc.(j) land lnot xl lor xl) land lmask;
    dst.u.(j) <- xl
  done

let mul a b =
  let dst = create (max a.w b.w) in
  mul_into dst a b;
  dst

(* ------------------------------------------------------------------ *)
(* Relational (scalar result per lane; X on any undefined input bit)  *)
(* ------------------------------------------------------------------ *)

let diff_lanes a b =
  let w = max a.w b.w in
  let d = ref 0 in
  for j = 0 to w - 1 do
    d := !d lor (vw a j lxor vw b j)
  done;
  !d land lmask

let rel_scalar_into dst xl defined_true =
  scalar_into dst ((defined_true land lnot xl) lor xl) xl

let eq_into dst a b =
  let xl = unknown_lanes a lor unknown_lanes b in
  rel_scalar_into dst xl (lmask land lnot (diff_lanes a b))

let eq a b =
  let dst = create 1 in
  eq_into dst a b;
  dst

let neq_into dst a b =
  let xl = unknown_lanes a lor unknown_lanes b in
  rel_scalar_into dst xl (diff_lanes a b)

let neq a b =
  let dst = create 1 in
  neq_into dst a b;
  dst

(* Lanes where a < b unsigned, by ripple from the LSB: at each bit,
   strictly-less is "this bit says less" or "equal here and less
   below". *)
let lt_lanes a b =
  let w = max a.w b.w in
  let lt = ref 0 in
  for j = 0 to w - 1 do
    let va = vw a j and vb = vw b j in
    lt := (lnot va land vb) lor (lnot (va lxor vb) land !lt)
  done;
  !lt land lmask

let lt_into dst a b =
  let xl = unknown_lanes a lor unknown_lanes b in
  rel_scalar_into dst xl (lt_lanes a b)

let lt a b =
  let dst = create 1 in
  lt_into dst a b;
  dst

let ge_into dst a b =
  let xl = unknown_lanes a lor unknown_lanes b in
  rel_scalar_into dst xl (lmask land lnot (lt_lanes a b))

let ge a b =
  let dst = create 1 in
  ge_into dst a b;
  dst

let gt_into dst a b = lt_into dst b a
let le_into dst a b = ge_into dst b a
let gt a b = lt b a
let le a b = ge b a

(* Verilog ===: exact per-bit match including X and Z; always
   defined. *)
let case_diff_lanes a b =
  let w = max a.w b.w in
  let d = ref 0 in
  for j = 0 to w - 1 do
    d := !d lor (vw a j lxor vw b j) lor (uw a j lxor uw b j)
  done;
  !d land lmask

let case_eq_into dst a b =
  scalar_into dst (lmask land lnot (case_diff_lanes a b)) 0

let case_eq a b =
  let dst = create 1 in
  case_eq_into dst a b;
  dst

let case_neq_into dst a b = scalar_into dst (case_diff_lanes a b) 0

let case_neq a b =
  let dst = create 1 in
  case_neq_into dst a b;
  dst

(* ------------------------------------------------------------------ *)
(* Logical && / || (full truth evaluation of both sides, as the       *)
(* interpreter does — no short circuit)                               *)
(* ------------------------------------------------------------------ *)

let logical_and_into dst a b =
  let t1a, t0a, _ = truth a and t1b, t0b, _ = truth b in
  let decided = (t1a lor t0a) land (t1b lor t0b) in
  let r1 = t1a land t1b in
  let und = lmask land lnot decided in
  scalar_into dst ((r1 land decided) lor und) und

let logical_and a b =
  let dst = create 1 in
  logical_and_into dst a b;
  dst

let logical_or_into dst a b =
  let t1a, t0a, _ = truth a and t1b, t0b, _ = truth b in
  let decided = (t1a lor t0a) land (t1b lor t0b) in
  let r1 = t1a lor t1b in
  let und = lmask land lnot decided in
  scalar_into dst ((r1 land decided) lor und) und

let logical_or a b =
  let dst = create 1 in
  logical_or_into dst a b;
  dst

let logical_not_into dst a =
  let _, t0, tx = truth a in
  scalar_into dst (t0 lor tx) tx

let logical_not a =
  let dst = create 1 in
  logical_not_into dst a;
  dst

(* ------------------------------------------------------------------ *)
(* Ternary / mux with a per-lane select                               *)
(* ------------------------------------------------------------------ *)

(* sel is 1-wide (or wider — its truth value decides): lanes where the
   condition is true take [a], false take [b], undecided take the
   X-select mux (defined-and-agreeing bits survive, the rest X). *)
let mux_into ~sel dst a b =
  if dst.w <> max a.w b.w then bad_dst "mux_into";
  let s1, s0, sx = truth sel in
  for j = 0 to dst.w - 1 do
    let va = vw a j and ua = uw a j and vb = vw b j and ub = uw b j in
    let d = lnot ua land lnot ub land lnot (va lxor vb) land lmask in
    let rx = sx land lnot d in
    dst.v.(j) <-
      ((va land s1) lor (vb land s0) lor (sx land d land va) lor rx)
      land lmask;
    dst.u.(j) <- ((ua land s1) lor (ub land s0) lor rx) land lmask
  done

let mux ~sel a b =
  let dst = create (max a.w b.w) in
  mux_into ~sel dst a b;
  dst

(* ------------------------------------------------------------------ *)
(* Per-lane decoded index helpers                                     *)
(* ------------------------------------------------------------------ *)

(* Lanes where [idx] equals the constant [n] with every bit defined.
   A lane of an index wider than [Bv.packed_width_limit] is treated as
   undefined, matching [Bv.to_int] on the wide representation. *)
let eq_const_lanes idx n =
  if idx.w > Bv.packed_width_limit then 0
  else begin
    let defined = lmask land lnot (unknown_lanes idx) in
    let d = ref 0 in
    for j = 0 to idx.w - 1 do
      let bit = if (n lsr j) land 1 = 1 then lmask else 0 in
      d := !d lor (idx.v.(j) lxor bit)
    done;
    (* Values of n that need bits beyond the index width never match. *)
    if n lsr idx.w <> 0 then 0 else defined land lnot !d
  end

let defined_lanes idx =
  if idx.w > Bv.packed_width_limit then 0
  else lmask land lnot (unknown_lanes idx)

(* ------------------------------------------------------------------ *)
(* Shifts and dynamic index (per-lane amount)                         *)
(* ------------------------------------------------------------------ *)

let shift_left_into dst t amt =
  if dst.w <> t.w then bad_dst "shift_left_into";
  let w = dst.w in
  let v = dst.v and u = dst.u in
  Array.fill v 0 w 0;
  Array.fill u 0 w 0;
  for n = 0 to w - 1 do
    let en = eq_const_lanes amt n in
    if en <> 0 then
      for j = n to w - 1 do
        v.(j) <- v.(j) lor (t.v.(j - n) land en);
        u.(j) <- u.(j) lor (t.u.(j - n) land en)
      done
  done;
  (* Defined amounts >= w shift everything out (zero, the default);
     undefined amounts give all-X. *)
  let xl = lmask land lnot (defined_lanes amt) in
  if xl <> 0 then
    for j = 0 to w - 1 do
      v.(j) <- v.(j) lor xl;
      u.(j) <- u.(j) lor xl
    done

let shift_left t amt =
  let dst = create t.w in
  shift_left_into dst t amt;
  dst

let shift_right_into dst t amt =
  if dst.w <> t.w then bad_dst "shift_right_into";
  let w = dst.w in
  let v = dst.v and u = dst.u in
  Array.fill v 0 w 0;
  Array.fill u 0 w 0;
  for n = 0 to w - 1 do
    let en = eq_const_lanes amt n in
    if en <> 0 then
      for j = 0 to w - 1 - n do
        v.(j) <- v.(j) lor (t.v.(j + n) land en);
        u.(j) <- u.(j) lor (t.u.(j + n) land en)
      done
  done;
  let xl = lmask land lnot (defined_lanes amt) in
  if xl <> 0 then
    for j = 0 to w - 1 do
      v.(j) <- v.(j) lor xl;
      u.(j) <- u.(j) lor xl
    done

let shift_right t amt =
  let dst = create t.w in
  shift_right_into dst t amt;
  dst

(* Dynamic bit select [t[idx]]: out-of-range or undefined indices read
   X, per the interpreter. *)
let index_into dst t idx =
  let rv = ref 0 and ru = ref 0 and covered = ref 0 in
  for n = 0 to t.w - 1 do
    let en = eq_const_lanes idx n in
    if en <> 0 then begin
      covered := !covered lor en;
      rv := !rv lor (t.v.(n) land en);
      ru := !ru lor (t.u.(n) land en)
    end
  done;
  let bad = lmask land lnot !covered in
  scalar_into dst (!rv lor bad) (!ru lor bad)

let index t idx =
  let dst = create 1 in
  index_into dst t idx;
  dst
