(* Two-plane packed bitvectors.

   A vector of width <= [packed_width_limit] is stored as two native
   ints — a value plane [v] and an unknown plane [u].  Bit i is
   defined iff bit i of [u] is 0, in which case bit i of [v] is its
   value; otherwise [v]=1 encodes X and [v]=0 encodes Z.  Both planes
   are zero above the width, so zero-extension is free and packed
   logic/arithmetic runs word-parallel instead of per-bit.

   Wider vectors fall back to the original representation, an array of
   [Bit.t] with index 0 the least significant bit.  The packed form is
   canonical: any vector of width <= [packed_width_limit] is [P],
   anything wider is [W], so [equal]/[compare] never mix forms at the
   same width. *)

type t =
  | P of { w : int; v : int; u : int }
  | W of Bit.t array

(* 62 keeps every plane a non-negative OCaml int (bit 62 is the sign
   bit of a 63-bit native int), so masks, comparisons and shifts never
   see negative values. *)
let packed_width_limit = 62

let mask_of w = (1 lsl w) - 1

let width = function P { w; _ } -> w | W a -> Array.length a

(* ------------------------------------------------------------------ *)
(* Array-representation reference ops (wide fallback)                 *)
(* ------------------------------------------------------------------ *)

module A = struct
  let resize a w =
    Array.init w (fun i -> if i < Array.length a then a.(i) else Bit.L0)

  let map2 f a b =
    let w = max (Array.length a) (Array.length b) in
    let a = if Array.length a = w then a else resize a w
    and b = if Array.length b = w then b else resize b w in
    Array.init w (fun i -> f a.(i) b.(i))

  let is_defined a = Array.for_all Bit.is_defined a
  let defined2 a b = is_defined a && is_defined b
  let all_x w = Array.make w Bit.X

  let add a b =
    let w = max (Array.length a) (Array.length b) in
    if not (defined2 a b) then all_x w
    else begin
      let a = resize a w and b = resize b w in
      let out = Array.make w Bit.L0 in
      let carry = ref false in
      for i = 0 to w - 1 do
        let ab = Bit.equal a.(i) Bit.L1 and bb = Bit.equal b.(i) Bit.L1 in
        let sum = Bool.to_int ab + Bool.to_int bb + Bool.to_int !carry in
        out.(i) <- Bit.of_bool (sum land 1 = 1);
        carry := sum >= 2
      done;
      out
    end

  let neg a =
    let w = Array.length a in
    if not (is_defined a) then all_x w
    else
      add (Array.map Bit.lognot a)
        (Array.init w (fun i -> Bit.of_bool (i = 0)))

  let sub a b =
    let w = max (Array.length a) (Array.length b) in
    if not (defined2 a b) then all_x w else add (resize a w) (neg (resize b w))

  let mul a b =
    let w = max (Array.length a) (Array.length b) in
    if not (defined2 a b) then all_x w
    else begin
      let a = resize a w and b = resize b w in
      let acc = ref (Array.make w Bit.L0) in
      for i = 0 to w - 1 do
        if Bit.equal b.(i) Bit.L1 then begin
          let shifted =
            Array.init w (fun j -> if j < i then Bit.L0 else a.(j - i))
          in
          acc := add !acc shifted
        end
      done;
      !acc
    end

  let equal_arr a b =
    Array.length a = Array.length b && Array.for_all2 Bit.equal a b

  let ult a b =
    let w = max (Array.length a) (Array.length b) in
    let a = resize a w and b = resize b w in
    let rec loop i =
      if i < 0 then false
      else if Bit.equal a.(i) b.(i) then loop (i - 1)
      else Bit.equal b.(i) Bit.L1
    in
    loop (w - 1)
end

(* ------------------------------------------------------------------ *)
(* Representation conversion                                          *)
(* ------------------------------------------------------------------ *)

let bit_planes = function
  | Bit.L0 -> (0, 0)
  | Bit.L1 -> (1, 0)
  | Bit.X -> (1, 1)
  | Bit.Z -> (0, 1)

let planes_bit v u =
  if u = 0 then if v = 0 then Bit.L0 else Bit.L1
  else if v = 0 then Bit.Z
  else Bit.X

let pack_arr a =
  let w = Array.length a in
  let v = ref 0 and u = ref 0 in
  for i = 0 to w - 1 do
    let bv, bu = bit_planes a.(i) in
    v := !v lor (bv lsl i);
    u := !u lor (bu lsl i)
  done;
  P { w; v = !v; u = !u }

let of_arr a = if Array.length a <= packed_width_limit then pack_arr a else W a

let to_arr = function
  | W a -> a
  | P { w; v; u } ->
    Array.init w (fun i -> planes_bit ((v lsr i) land 1) ((u lsr i) land 1))

(* Fast-path interop for the compiled simulator. *)
let planes = function P { v; u; _ } -> Some (v, u) | W _ -> None

let of_planes ~width:w v u =
  if w <= 0 || w > packed_width_limit then
    invalid_arg "Bv.of_planes: width out of packed range";
  let m = mask_of w in
  P { w; v = v land m; u = u land m }

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let create w b =
  if w <= 0 then invalid_arg "Bv.create: width must be positive";
  if w <= packed_width_limit then begin
    let bv, bu = bit_planes b in
    let m = mask_of w in
    P { w; v = (if bv = 1 then m else 0); u = (if bu = 1 then m else 0) }
  end
  else W (Array.make w b)

let zero w = create w Bit.L0
let ones w = create w Bit.L1
let all_x w = create w Bit.X
let all_z w = create w Bit.Z

let of_int ~width:w v =
  if w <= 0 then invalid_arg "Bv.of_int: width must be positive";
  if v < 0 then invalid_arg "Bv.of_int: negative value";
  if w <= packed_width_limit then P { w; v = v land mask_of w; u = 0 }
  else
    W (Array.init w (fun i ->
           Bit.of_bool (i <= 62 && v lsr i land 1 = 1)))

let to_int = function
  | P { v; u; _ } -> if u = 0 then Some v else None
  | W _ -> None (* width > 62 *)

let to_int_exn t =
  match to_int t with
  | Some n -> n
  | None -> invalid_arg "Bv.to_int_exn: undefined bits"

let of_bits bits =
  match bits with
  | [] -> invalid_arg "Bv.of_bits: empty"
  | _ ->
    let arr = Array.of_list bits in
    let n = Array.length arr in
    of_arr (Array.init n (fun i -> arr.(n - 1 - i)))

let of_string s =
  let bits = ref [] in
  String.iter (fun c -> if c <> '_' then bits := Bit.of_char c :: !bits) s;
  match !bits with
  | [] -> invalid_arg "Bv.of_string: empty"
  | lsb_first -> of_arr (Array.of_list lsb_first)

(* ------------------------------------------------------------------ *)
(* Access                                                             *)
(* ------------------------------------------------------------------ *)

let get t i =
  if i < 0 || i >= width t then invalid_arg "Bv.get: index out of range";
  match t with
  | P { v; u; _ } -> planes_bit ((v lsr i) land 1) ((u lsr i) land 1)
  | W a -> a.(i)

let set t i b =
  if i < 0 || i >= width t then invalid_arg "Bv.set: index out of range";
  match t with
  | P { w; v; u } ->
    let bv, bu = bit_planes b in
    let clear = lnot (1 lsl i) in
    P
      {
        w;
        v = (v land clear) lor (bv lsl i);
        u = (u land clear) lor (bu lsl i);
      }
  | W a ->
    let a' = Array.copy a in
    a'.(i) <- b;
    W a'

let to_string t =
  let w = width t in
  String.init w (fun i -> Bit.to_char (get t (w - 1 - i)))

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  match a, b with
  | P a, P b -> a.w = b.w && a.v = b.v && a.u = b.u
  | W a, W b -> A.equal_arr a b
  | P _, W _ | W _, P _ -> false (* canonical: widths necessarily differ *)

let bit_rank v u = if u = 0 then v else if v = 1 then 2 else 3

let compare a b =
  let c = Int.compare (width a) (width b) in
  if c <> 0 then c
  else
    match a, b with
    | P a, P b ->
      let diff = a.v lxor b.v lor (a.u lxor b.u) in
      if diff = 0 then 0
      else begin
        (* Highest differing bit decides, as in the array path. *)
        let i = ref (a.w - 1) in
        while (diff lsr !i) land 1 = 0 do
          decr i
        done;
        let i = !i in
        Int.compare
          (bit_rank ((a.v lsr i) land 1) ((a.u lsr i) land 1))
          (bit_rank ((b.v lsr i) land 1) ((b.u lsr i) land 1))
      end
    | _ ->
      let a = to_arr a and b = to_arr b in
      let rec loop i =
        if i < 0 then 0
        else
          let c = Bit.compare a.(i) b.(i) in
          if c <> 0 then c else loop (i - 1)
      in
      loop (Array.length a - 1)

let is_defined = function P { u; _ } -> u = 0 | W a -> A.is_defined a

let resize t w =
  if w <= 0 then invalid_arg "Bv.resize: width must be positive";
  if w = width t then t
  else
    match t with
    | P { v; u; _ } when w <= packed_width_limit ->
      let m = mask_of w in
      P { w; v = v land m; u = u land m }
    | _ -> of_arr (A.resize (to_arr t) w)

let concat hi lo =
  let wh = width hi and wl = width lo in
  match hi, lo with
  | P h, P l when wh + wl <= packed_width_limit ->
    P { w = wh + wl; v = (h.v lsl wl) lor l.v; u = (h.u lsl wl) lor l.u }
  | _ -> of_arr (Array.append (to_arr lo) (to_arr hi))

let select t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= width t then invalid_arg "Bv.select: bad range";
  match t with
  | P { v; u; _ } ->
    let w = hi - lo + 1 in
    let m = mask_of w in
    P { w; v = (v lsr lo) land m; u = (u lsr lo) land m }
  | W a -> of_arr (Array.sub a lo (hi - lo + 1))

let insert t ~lo src =
  let w = width t and ws = width src in
  if lo < 0 || lo + ws > w then invalid_arg "Bv.insert: bad range";
  match t, src with
  | P d, P s ->
    let clear = lnot (mask_of ws lsl lo) in
    P
      {
        w;
        v = (d.v land clear) lor (s.v lsl lo);
        u = (d.u land clear) lor (s.u lsl lo);
      }
  | _ ->
    let a = Array.copy (to_arr t) and s = to_arr src in
    Array.blit s 0 a lo ws;
    of_arr a

let repeat n t =
  if n <= 0 then invalid_arg "Bv.repeat: count must be positive";
  let w = width t in
  if n * w <= packed_width_limit then begin
    match t with
    | P { v; u; _ } ->
      let rv = ref 0 and ru = ref 0 in
      for i = 0 to n - 1 do
        rv := !rv lor (v lsl (i * w));
        ru := !ru lor (u lsl (i * w))
      done;
      P { w = n * w; v = !rv; u = !ru }
    | W _ -> assert false
  end
  else
    let a = to_arr t in
    of_arr (Array.init (n * w) (fun i -> a.(i mod w)))

(* ------------------------------------------------------------------ *)
(* Bitwise logic                                                      *)
(* ------------------------------------------------------------------ *)

(* Word-parallel plane formulas.  Naming: [a0]/[a1] are the defined-0
   and defined-1 bits of [a]; the result planes encode X as v=1,u=1
   and Z as v=0,u=1. *)

let packed2 f g a b =
  match a, b with
  | P pa, P pb ->
    let w = max pa.w pb.w in
    let m = mask_of w in
    f ~m ~va:pa.v ~ua:pa.u ~vb:pb.v ~ub:pb.u w
  | _ -> of_arr (A.map2 g (to_arr a) (to_arr b))

let logand =
  packed2
    (fun ~m ~va ~ua ~vb ~ub w ->
      let a0 = lnot va land lnot ua and b0 = lnot vb land lnot ub in
      let r1 = va land lnot ua land (vb land lnot ub) in
      let r0 = a0 lor b0 in
      let rx = m land lnot (r0 lor r1) in
      P { w; v = (r1 lor rx) land m; u = rx })
    Bit.logand

let logor =
  packed2
    (fun ~m ~va ~ua ~vb ~ub w ->
      let a1 = va land lnot ua and b1 = vb land lnot ub in
      let r1 = a1 lor b1 in
      let r0 = lnot va land lnot ua land (lnot vb land lnot ub) in
      let rx = m land lnot (r1 lor r0) in
      P { w; v = (r1 lor rx) land m; u = rx })
    Bit.logor

let logxor =
  packed2
    (fun ~m ~va ~ua ~vb ~ub w ->
      let bd = lnot ua land lnot ub land m in
      let rx = m land lnot bd in
      P { w; v = (va lxor vb) land bd lor rx; u = rx })
    Bit.logxor

let lognot = function
  | P { w; v; u } ->
    let m = mask_of w in
    P { w; v = (lnot v land lnot u land m) lor u; u }
  | W a -> W (Array.map Bit.lognot a)

let resolve =
  packed2
    (fun ~m ~va ~ua ~vb ~ub w ->
      let az = ua land lnot va and bz = ub land lnot vb in
      let only_az = az land lnot bz and only_bz = bz land lnot az in
      let both_z = az land bz in
      let neither = m land lnot (az lor bz) in
      let def_eq = lnot ua land lnot ub land lnot (va lxor vb) in
      let rx = neither land lnot def_eq in
      P
        {
          w;
          v =
            only_az land vb lor (only_bz land va)
            lor (neither land def_eq land va)
            lor rx;
          u = only_az land ub lor (only_bz land ua) lor both_z lor rx;
        })
    Bit.resolve

(* ------------------------------------------------------------------ *)
(* Reductions and truth value                                         *)
(* ------------------------------------------------------------------ *)

let reduce_and = function
  | P { w; v; u } ->
    if lnot v land lnot u land mask_of w <> 0 then Bit.L0
    else if u <> 0 then Bit.X
    else Bit.L1
  | W a -> Array.fold_left Bit.logand Bit.L1 a

let reduce_or = function
  | P { v; u; _ } ->
    if v land lnot u <> 0 then Bit.L1 else if u <> 0 then Bit.X else Bit.L0
  | W a -> Array.fold_left Bit.logor Bit.L0 a

let parity v =
  let rec go acc v = if v = 0 then acc else go (acc lxor (v land 1)) (v lsr 1) in
  go 0 v

let reduce_xor = function
  | P { v; u; _ } ->
    if u <> 0 then Bit.X else if parity v = 1 then Bit.L1 else Bit.L0
  | W a -> Array.fold_left Bit.logxor Bit.L0 a

let to_bool t = Bit.to_bool (reduce_or t)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                         *)
(* ------------------------------------------------------------------ *)

let arith2 f g a b =
  match a, b with
  | P pa, P pb ->
    let w = max pa.w pb.w in
    if pa.u lor pb.u <> 0 then all_x w
    else P { w; v = f pa.v pb.v land mask_of w; u = 0 }
  | _ -> of_arr (g (to_arr a) (to_arr b))

let add = arith2 ( + ) A.add
let sub = arith2 ( - ) A.sub

(* Native [*] wraps mod 2^63; masking keeps the low [w] bits, which is
   exactly the array path's shift-add mod 2^w. *)
let mul = arith2 ( * ) A.mul

let neg = function
  | P { w; v; u } ->
    if u <> 0 then all_x w else P { w; v = -v land mask_of w; u = 0 }
  | W a -> of_arr (A.neg a)

(* ------------------------------------------------------------------ *)
(* Relational                                                         *)
(* ------------------------------------------------------------------ *)

let rel2 f g a b =
  match a, b with
  | P pa, P pb ->
    if pa.u lor pb.u <> 0 then Bit.X else Bit.of_bool (f pa.v pb.v)
  | _ ->
    let a = to_arr a and b = to_arr b in
    if A.defined2 a b then Bit.of_bool (g a b) else Bit.X

let eq = rel2 ( = ) (fun a b ->
    let w = max (Array.length a) (Array.length b) in
    A.equal_arr (A.resize a w) (A.resize b w))

let neq a b = Bit.lognot (eq a b)
let lt = rel2 ( < ) A.ult
let ge = rel2 ( >= ) (fun a b -> not (A.ult a b))
let gt a b = lt b a
let le a b = ge b a

let case_eq a b =
  match a, b with
  | P pa, P pb -> Bit.of_bool (pa.v = pb.v && pa.u = pb.u)
  | _ ->
    let a = to_arr a and b = to_arr b in
    let w = max (Array.length a) (Array.length b) in
    Bit.of_bool (A.equal_arr (A.resize a w) (A.resize b w))

(* ------------------------------------------------------------------ *)
(* Shifts                                                             *)
(* ------------------------------------------------------------------ *)

let shift_left t amt =
  let w = width t in
  match to_int amt with
  | None -> all_x w
  | Some n -> (
    match t with
    | P { v; u; _ } ->
      if n >= w then zero w
      else
        let m = mask_of w in
        P { w; v = (v lsl n) land m; u = (u lsl n) land m }
    | W a ->
      of_arr (Array.init w (fun i -> if i < n then Bit.L0 else a.(i - n))))

let shift_right t amt =
  let w = width t in
  match to_int amt with
  | None -> all_x w
  | Some n -> (
    match t with
    | P { v; u; _ } ->
      if n >= w then zero w else P { w; v = v lsr n; u = u lsr n }
    | W a ->
      of_arr
        (Array.init w (fun i -> if i + n < w then a.(i + n) else Bit.L0)))

(* ------------------------------------------------------------------ *)
(* Mux                                                                *)
(* ------------------------------------------------------------------ *)

let mux ~sel a b =
  match sel with
  | Bit.L1 -> a
  | Bit.L0 -> b
  | Bit.X | Bit.Z -> (
    match a, b with
    | P pa, P pb ->
      let w = max pa.w pb.w in
      let m = mask_of w in
      let d = lnot pa.u land lnot pb.u land lnot (pa.v lxor pb.v) land m in
      let rx = m land lnot d in
      P { w; v = pa.v land d lor rx; u = rx }
    | _ ->
      let a = to_arr a and b = to_arr b in
      let w = max (Array.length a) (Array.length b) in
      of_arr (A.map2 (fun x y -> Bit.mux ~sel x y) (A.resize a w) (A.resize b w)))
