type step = { src : int; dst : int; choice : int; fresh : bool }
type trace = step array

type stats = {
  num_traces : int;
  edge_traversals : int;
  instructions : int;
  longest_trace_edges : int;
  longest_trace_instructions : int;
  traces_hitting_limit : int;
  gen_time_s : float;
}

type t = { traces : trace array; stats : stats }

let generate ?instr_limit ?(instructions_of_edge = fun ~src:_ ~choice:_ -> 1)
    (graph : Avp_enum.State_graph.t) =
  let t0 = Avp_obs.Obs.Clock.now_s () in
  let adj = graph.Avp_enum.State_graph.adj in
  let n = Array.length adj in
  let offsets = Avp_enum.State_graph.edge_offsets graph in
  let total_edges = offsets.(n) in
  let traversed = Array.make total_edges false in
  let untraversed_left = ref total_edges in
  (* Per-state: count of untraversed out-edges and a monotone cursor
     to the first possibly-untraversed position. *)
  let untraversed_count = Array.map Array.length adj in
  let cursor = Array.make n 0 in
  (* Reusable epoch-stamped BFS state for the explore phase: parent
     pointers record the (node, out-position) the BFS arrived from, so
     no per-call allocation and no edge-position lookup afterwards. *)
  let stamp = Array.make n 0 in
  let epoch = ref 0 in
  let parent_node = Array.make n (-1) in
  let parent_pos = Array.make n (-1) in
  let bfs_queue = Queue.create () in
  (* Shortest path (as (node, position) pairs, in order) from [src] to
     the nearest node with an untraversed out-edge; [] when none. *)
  let explore_path src =
    incr epoch;
    let e = !epoch in
    Queue.clear bfs_queue;
    stamp.(src) <- e;
    Queue.add src bfs_queue;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty bfs_queue) do
      let u = Queue.pop bfs_queue in
      let out = adj.(u) in
      let k = Array.length out in
      let i = ref 0 in
      while !found < 0 && !i < k do
        let v, _ = out.(!i) in
        if stamp.(v) <> e then begin
          stamp.(v) <- e;
          parent_node.(v) <- u;
          parent_pos.(v) <- !i;
          if untraversed_count.(v) > 0 then found := v
          else Queue.add v bfs_queue
        end;
        incr i
      done
    done;
    if !found < 0 then []
    else begin
      let rec build v acc =
        if v = src then acc
        else build parent_node.(v) ((parent_node.(v), parent_pos.(v)) :: acc)
      in
      build !found []
    end
  in
  let traces = ref [] in
  let num_traces = ref 0 in
  let edge_traversals = ref 0 in
  let instructions = ref 0 in
  let longest_edges = ref 0 in
  let longest_instr = ref 0 in
  let limit_hits = ref 0 in
  let reset = 0 in
  while !untraversed_left > 0 do
    (* One trace, starting from reset. *)
    let steps = ref [] in
    let steps_len = ref 0 in
    let trace_instr = ref 0 in
    let fresh_in_trace = ref 0 in
    let state = ref reset in
    let take ~fresh (src, pos) =
      let dst, choice = adj.(src).(pos) in
      if fresh then begin
        traversed.(offsets.(src) + pos) <- true;
        untraversed_count.(src) <- untraversed_count.(src) - 1;
        decr untraversed_left;
        incr fresh_in_trace
      end;
      steps := { src; dst; choice; fresh } :: !steps;
      incr steps_len;
      let w = instructions_of_edge ~src ~choice in
      trace_instr := !trace_instr + w;
      state := dst
    in
    let over_limit () =
      (* The limit never closes a trace before it has covered at
         least one fresh edge; otherwise short limits could loop
         forever re-walking the same prefix. *)
      match instr_limit with
      | Some l when !trace_instr >= l && !fresh_in_trace > 0 -> true
      | Some _ | None -> false
    in
    let continue_trace = ref true in
    while !continue_trace do
      (* Depth-first phase: follow untraversed edges greedily. *)
      while untraversed_count.(!state) > 0 && not (over_limit ()) do
        let s = !state in
        while traversed.(offsets.(s) + cursor.(s)) do
          cursor.(s) <- cursor.(s) + 1
        done;
        take ~fresh:true (s, cursor.(s))
      done;
      if over_limit () then begin
        incr limit_hits;
        continue_trace := false
      end
      else begin
        (* Explore phase: shortest path to the nearest state that
           still has an untraversed out-edge.  By minimality every
           edge of the path is already traversed. *)
        match explore_path !state with
        | [] -> continue_trace := false
        | path -> List.iter (take ~fresh:false) path
      end
    done;
    if !steps_len > 0 then begin
      let arr = Array.of_list (List.rev !steps) in
      traces := arr :: !traces;
      incr num_traces;
      edge_traversals := !edge_traversals + !steps_len;
      instructions := !instructions + !trace_instr;
      if !steps_len > !longest_edges then longest_edges := !steps_len;
      if !trace_instr > !longest_instr then longest_instr := !trace_instr
    end
    else
      (* A trace with no steps means reset itself has no reachable
         untraversed edge, yet some remain: impossible for graphs
         enumerated from reset, but guard against a malformed input. *)
      untraversed_left := 0
  done;
  let stats =
    {
      num_traces = !num_traces;
      edge_traversals = !edge_traversals;
      instructions = !instructions;
      longest_trace_edges = !longest_edges;
      longest_trace_instructions = !longest_instr;
      traces_hitting_limit = !limit_hits;
      gen_time_s = Avp_obs.Obs.Clock.now_s () -. t0;
    }
  in
  if Avp_obs.Obs.enabled () then
    Avp_obs.Obs.complete ~cat:"tour" "tour.generate" ~dur_s:stats.gen_time_s
      ~args:
        [
          ("traces", Avp_obs.Obs.Int stats.num_traces);
          ("edge_traversals", Avp_obs.Obs.Int stats.edge_traversals);
          ("instructions", Avp_obs.Obs.Int stats.instructions);
        ];
  { traces = Array.of_list (List.rev !traces); stats }

let covers_all_edges (graph : Avp_enum.State_graph.t) t =
  let adj = graph.Avp_enum.State_graph.adj in
  let offsets = Avp_enum.State_graph.edge_offsets graph in
  let num_edges = offsets.(Array.length adj) in
  (* One bit per edge at its dense [edge_offsets] index — no per-step
     tuple boxing or hashing.  Edges of a state are stored in
     ascending choice-index order (each choice appears at most once),
     so a step's edge position is a binary search away. *)
  let seen = Bytes.make ((num_edges + 7) / 8) '\000' in
  let edge_pos src dst choice =
    if src < 0 || src >= Array.length adj then None
    else begin
      let out = adj.(src) in
      let lo = ref 0 and hi = ref (Array.length out) in
      while !hi - !lo > 0 do
        let mid = (!lo + !hi) / 2 in
        let _, c = out.(mid) in
        if c < choice then lo := mid + 1 else hi := mid
      done;
      if !lo < Array.length out then
        let d, c = out.(!lo) in
        if c = choice && d = dst then Some !lo else None
      else None
    end
  in
  Array.iter
    (fun trace ->
      Array.iter
        (fun s ->
          match edge_pos s.src s.dst s.choice with
          | Some pos ->
            let e = offsets.(s.src) + pos in
            let byte = Char.code (Bytes.get seen (e lsr 3)) in
            Bytes.set seen (e lsr 3) (Char.chr (byte lor (1 lsl (e land 7))))
          | None -> ())
        trace)
    t.traces;
  let ok = ref true in
  let full_bytes = num_edges lsr 3 in
  for b = 0 to full_bytes - 1 do
    if Bytes.get seen b <> '\255' then ok := false
  done;
  let rem = num_edges land 7 in
  if rem > 0 then begin
    let mask = (1 lsl rem) - 1 in
    if Char.code (Bytes.get seen full_bytes) land mask <> mask then
      ok := false
  end;
  !ok

let is_valid (graph : Avp_enum.State_graph.t) t =
  let adj = graph.Avp_enum.State_graph.adj in
  Array.for_all
    (fun trace ->
      let cur = ref 0 in
      Array.for_all
        (fun s ->
          s.src = !cur
          && Array.exists (fun (d, c) -> d = s.dst && c = s.choice) adj.(s.src)
          && begin
               cur := s.dst;
               true
             end)
        trace)
    t.traces

let pp_stats ppf s =
  Format.fprintf ppf
    "traces=%d traversals=%d instructions=%d longest=%d edges \
     (%d instr) limit-hits=%d time=%.2fs"
    s.num_traces s.edge_traversals s.instructions s.longest_trace_edges
    s.longest_trace_instructions s.traces_hitting_limit s.gen_time_s
