(** Structural lints over elaborated designs.

    The paper's flow assumes a "stylized synthesizable subset"; these
    checks catch departures from it early, before translation or
    simulation produce confusing results. *)

type severity = Warning | Error

type finding = {
  severity : severity;
  rule : string;
  net : string option;
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit

val check : Elab.t -> finding list
(** All findings in a deterministic, byte-stable order: (severity,
    rule, net id, message), errors first.  Rules:

    - [multiple-drivers]: a net written by more than one continuous
      assignment (warning — suppressed when every driver can evaluate
      to all-z, i.e. a deliberate tri-state bus) or by both an
      assignment and a process (error);
    - [reg-never-written]: a declared register no process assigns;
    - [wire-never-driven]: a wire with no driver that is read;
    - [unused-net]: declared but never read or written (warning);
    - [mixed-assignment]: a register written by both blocking and
      nonblocking assignments across processes (error);
    - [seq-and-comb]: a register written by both sequential and
      combinational processes (error). *)
