(** Abstract syntax for the synthesizable Verilog subset.

    The subset covers what the paper's translator needs: module
    hierarchy, wire/reg declarations, continuous assignments,
    combinational and edge-triggered [always] blocks with blocking and
    nonblocking assignment, [if]/[case], and the usual expression
    operators including concatenation, replication and four-valued
    literals.  Annotation directives (comments beginning with [avp])
    are preserved as attributes on declarations and as standalone
    items. *)

type loc = { line : int; col : int }

val pp_loc : Format.formatter -> loc -> unit
val no_loc : loc

type unop =
  | Not            (** [!] logical negation *)
  | Bnot           (** [~] bitwise complement *)
  | Uand           (** [&] reduction and *)
  | Uor            (** [|] reduction or *)
  | Uxor           (** [^] reduction xor *)
  | Neg            (** [-] two's-complement negation *)

type binop =
  | Add | Sub | Mul
  | Band | Bor | Bxor
  | Land | Lor
  | Eq | Neq | Ceq | Cneq
  | Lt | Le | Gt | Ge
  | Shl | Shr

type expr =
  | Literal of Avp_logic.Bv.t
  | Ident of string
  | Index of string * expr                 (** [a[i]] *)
  | Range of string * int * int            (** [a[hi:lo]] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Concat of expr list                    (** [{a, b, c}], head is MSB *)
  | Repeat of int * expr                   (** [{n{e}}] *)

type lvalue =
  | Lident of string
  | Lindex of string * expr
  | Lrange of string * int * int
  | Lconcat of lvalue list

type stmt =
  | Block of stmt list                     (** [begin .. end] *)
  | Blocking of lvalue * expr * loc        (** [l = e;] *)
  | Nonblocking of lvalue * expr * loc     (** [l <= e;] *)
  | If of expr * stmt * stmt option
  | Case of expr * (expr list * stmt) list * stmt option
                                           (** items, optional default *)
  | Nop

type edge = Posedge | Negedge

type sensitivity =
  | Comb   (** always at-star, or an explicit level-sensitive list *)
  | Edges of (edge * string) list  (** posedge/negedge sensitivity list *)

type net_kind = Wire | Reg

type range = { msb : int; lsb : int }
(** Declared as [ [msb:lsb] ]; a missing range means a scalar. *)

val range_width : range option -> int

type direction = Input | Output | Inout

type decl = {
  d_kind : net_kind;
  d_range : range option;
  d_names : string list;
  d_attrs : string list;  (** [avp] directive payloads attached to the line *)
  d_loc : loc;
}

type item =
  | Port_decl of direction * range option * string list * loc
  | Net_decl of decl
  | Assign of lvalue * expr * loc
  | Always of sensitivity * stmt * loc
  | Instance of {
      i_module : string;
      i_name : string;
      i_conns : (string option * expr) list;
          (** [Some p] for named [.p(e)], [None] positional *)
      i_loc : loc;
    }
  | Directive of string * loc              (** standalone [// avp ...] *)
  | Initial of stmt * loc
      (** accepted and ignored by synthesis-oriented passes *)

type module_decl = {
  m_name : string;
  m_ports : string list;
  m_items : item list;
  m_loc : loc;
}

type design = module_decl list

val unop_str : unop -> string
val binop_str : binop -> string

val pp_expr : Format.formatter -> expr -> unit
val pp_lvalue : Format.formatter -> lvalue -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_item : Format.formatter -> item -> unit
val pp_module : Format.formatter -> module_decl -> unit
val pp_design : Format.formatter -> design -> unit

val find_module : design -> string -> module_decl option

val equal_design : design -> design -> bool
(** Structural equality, including source positions.  [Bv.t] values
    are in canonical form, so per-bit (case) equality coincides with
    the structural one. *)

val expr_idents : expr -> string list
(** All identifiers read by an expression, without duplicates. *)

val lvalue_targets : lvalue -> string list
(** Base names written by an lvalue. *)

val stmt_reads : stmt -> string list
(** Identifiers a statement may read (including index expressions and
    condition selectors), without duplicates. *)

val stmt_writes : stmt -> string list
(** Base names a statement may write, without duplicates. *)
