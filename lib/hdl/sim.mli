(** Cycle-based simulator for elaborated designs.

    Two-phase semantics in the Synchronous-Murphi style the paper
    relies on: combinational logic (continuous assignments and
    always-at-star blocks) settles to a fixpoint, then a clock edge
    executes every matching edge-triggered block against the settled
    pre-edge values and commits nonblocking updates atomically.

    Registers power up as [X]; undriven wires read [Z].  Multiple
    continuous drivers of one net are combined with wire resolution,
    so tri-state buses behave as in the paper's Bug #5.  [force] pins
    a net to a value until [release], exactly like the Verilog
    commands the generated test vectors use. *)

type t

exception Comb_loop of string
(** Raised when combinational settling fails to converge, naming a
    net that keeps changing. *)

val create : ?engine:[ `Auto | `Interp | `Compiled | `Sliced ] -> Elab.t -> t
(** [`Auto] (the default) uses the compiled bytecode kernel whenever
    {!Compile.create} supports the design, falling back to the
    tree-walking interpreter otherwise; setting [AVP_SIM_ENGINE=interp]
    in the environment forces the interpreter, which serves as the
    differential oracle for the compiled engine.  [`Sliced] runs a
    one-lane instance of the bit-sliced batched kernel ({!Sliced}) —
    mainly for differential testing; batch users drive {!Sliced}
    directly — and falls back like [`Auto] when the design is outside
    its coverage. *)

val engine : t -> [ `Interp | `Compiled | `Sliced ]
(** Which engine [create] actually selected. *)

(** {2 Compile-once templates}

    Callers that simulate one design many times (a simulator per
    replay trace, hundreds of traces) pay static analysis and
    bytecode assembly once and stamp out cheap instances. *)

type template

val template : ?engine:[ `Auto | `Interp | `Compiled ] -> Elab.t -> template
val instantiate : template -> t
(** A fresh simulator at power-on state. *)

val template_design : template -> Elab.t

val design : t -> Elab.t

val time : t -> int
(** Number of clock edges stepped so far. *)

val get : t -> string -> Avp_logic.Bv.t
(** Current value of a net by hierarchical name.  @raise Not_found. *)

val get_id : t -> Elab.uid -> Avp_logic.Bv.t

val set : t -> string -> Avp_logic.Bv.t -> unit
(** Poke a net (typically a top-level input).  The value persists
    until overwritten by a driver or another [set].  Triggers
    combinational settling. *)

val force : t -> string -> Avp_logic.Bv.t -> unit
(** Pin a net, overriding any driver, until {!release}. *)

val release : t -> string -> unit
val forced : t -> string -> bool

val settle : t -> unit
(** Settle combinational logic without a clock edge.
    @raise Comb_loop if no fixpoint is reached. *)

val step : ?edge:Ast.edge -> t -> string -> unit
(** [step t clk] settles, fires every sequential block sensitive to
    the given edge (default [Posedge]) of [clk], commits nonblocking
    updates, advances {!time} and settles again. *)

val eval : t -> Elab.eexpr -> Avp_logic.Bv.t
(** Evaluate an expression against current values. *)

val poke_id : t -> Elab.uid -> Avp_logic.Bv.t -> unit
(** Write a net's value {e without} settling.  Used by batch drivers
    (e.g. the FSM translator) that poke many nets and then {!step};
    the value is resized to the net's width and ignored if the net is
    forced. *)

(** {2 Observation}

    A single observer hooks the dispatch layer, so waveform dumpers
    and telemetry see the same callbacks whichever engine [create]
    selected.  [on_step] fires after each completed clock edge (with
    the post-edge {!time}); [on_force]/[on_release] fire after the
    pin/unpin takes effect. *)

type observer = {
  on_step : time:int -> unit;
  on_force : string -> Avp_logic.Bv.t -> unit;
  on_release : string -> unit;
}

val set_observer : t -> observer option -> unit
val observer : t -> observer option
