(** Value Change Dump (IEEE 1364 §18) writer for simulation traces.

    Records selected nets each cycle and serializes the standard VCD
    format, viewable in GTKWave and friends.  Four-valued logic maps
    directly ([0 1 x z]). *)

type t

val create : Sim.t -> nets:string list -> t
(** @raise Not_found if a net name does not exist. *)

val sample : t -> unit
(** Record current values at the current simulation time (call once
    per clock cycle, after {!Sim.step}). *)

val serialize : ?timescale:string -> ?top:string -> t -> string
(** The complete VCD file contents. *)

val attach : Sim.t -> nets:string list -> t
(** Install a {!Sim.observer} that samples after every clock edge and
    records [force]/[release] commands as [$comment] annotations, so
    replayed test vectors dump without the driver calling {!sample}.
    Records time-zero values immediately.  Replaces any observer
    already installed on the simulator. *)

val detach : t -> unit
(** Remove the observer installed by {!attach}; the accumulated dump
    remains serializable. *)

val write : ?timescale:string -> ?top:string -> t -> string -> unit
(** [write t path] serializes to a file. *)
