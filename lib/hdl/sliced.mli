(** Bit-sliced batched simulation backend.

    Runs up to {!Avp_logic.Bv_sliced.lanes_limit} (62) independent
    simulations of one design word-parallel through a single compiled
    kernel: every net keeps one machine word per bit, and bit L of
    that word belongs to lane L.  Lane [l] of a batched run is
    bit-identical to a scalar run of the same stimulus — the scalar
    engines remain the differential oracle.

    {b Mutant schemata}: {!create_schemata} compiles the pristine
    design ONCE with per-lane mutation selects (a lane-masked mux
    between the original expression and the mutated one), so a
    mutation campaign over N single-site mutants costs ceil(N/62)
    word-parallel replays instead of N sequential ones.

    Control flow is predicated — an [if] executes both branches, each
    under the mask of the lanes that took it — so a step costs
    roughly the union of all lanes' work.  Forcing, releasing, poking
    and divergence checks all take per-lane masks. *)

open Avp_logic

type t

val create :
  ?u:Compile.units -> ?facts:Compile.facts -> lanes:int -> Elab.t -> t option
(** A batched simulator with [lanes] identical copies of the design
    (1..62).  [None] when the design uses a construct the kernel does
    not cover (currently: ternaries with unequal arm widths, as the
    scalar compiled engine).  Pass [?u] to reuse a static analysis;
    [?facts] compiles the {!Compile.specialize}d design instead
    (ignoring [?u], whose reader lists no longer apply). *)

val create_schemata :
  ?u:Compile.units -> base:Elab.t -> Elab.t array -> (t * bool array) option
(** [create_schemata ~base mutants] compiles [base] with lane [i]
    carrying [mutants.(i)] (1..62 mutants).  The boolean array flags
    which mutants could be scheduled into the schemata: unscheduled
    lanes (structural divergence beyond a single expression site)
    simulate the pristine base and must be handled by the scalar
    fallback.  [None] when the base itself is not supported. *)

val reinit : t -> unit
(** Reset every lane to power-on state (regs all-X, wires all-Z,
    nothing forced, nothing frozen, time 0) so one kernel serves many
    trace batches without recompiling. *)

val freeze : t -> mask:int -> unit
(** Retire the masked lanes until the next {!reinit}: every write
    path (commits, NBA flushes, pokes, forces) masks them out, so
    their nets stop changing and their downstream units drop out of
    the settle worklist.  A campaign freezes a lane once its verdict
    for the current trace is in, collapsing the word pass's cost to
    the union of the still-live lanes' activity.  Frozen lanes hold
    stale values — do not read them back. *)

val frozen_mask : t -> int
(** Lanes currently frozen. *)

val design : t -> Elab.t
val lanes : t -> int

val amask : t -> int
(** Active-lane mask, [(1 lsl lanes) - 1]. *)

val time : t -> int

val settle : t -> unit
(** @raise Compile.Comb_loop when no fixpoint is reached. *)

val step : ?edge:Ast.edge -> t -> Elab.uid -> unit
(** Settle, fire sequential blocks on the clock edge, commit
    nonblocking updates, advance time, settle again — all lanes in
    lockstep.  Default edge: posedge. *)

(** {1 Per-lane access} — [?mask] defaults to all active lanes *)

val poke_id : ?mask:int -> t -> Elab.uid -> Bv.t -> unit
(** Write the value into the masked lanes without settling; forced
    lanes are skipped, like the scalar [poke]. *)

val set_id : ?mask:int -> t -> Elab.uid -> Bv.t -> unit
(** [poke_id] followed by {!settle}. *)

val force_id : ?mask:int -> t -> Elab.uid -> Bv.t -> unit
(** Pin the masked lanes to the value.  Does NOT settle: comb
    settling is confluent, so batched stimulus (hundreds of per-lane
    forces per cycle) defers the fixpoint to the next {!settle} or
    {!step} instead of paying one settle per call.  Call {!settle}
    before reading combinational nets. *)

val force_lanes : t -> Elab.uid -> Bv.t option array -> unit
(** Pin a per-lane value (index = lane; [None] leaves the lane
    untouched) with a single readers mark — the batched form of
    {!force_id} the vector replay uses, one call per net per cycle
    instead of one per (lane, net).  Does not settle. *)

val release_id : ?mask:int -> t -> Elab.uid -> unit
(** Unpin the masked lanes and re-enqueue the net's driver.  Does NOT
    settle, like {!force_id}. *)

val forced_mask : t -> Elab.uid -> int
(** Lanes in which the net is currently forced. *)

val get_lane : t -> lane:int -> Elab.uid -> Bv.t
(** One lane's value of a net as a scalar vector. *)

val check_net : ?mask:int -> t -> Elab.uid -> predicted:int -> int * int
(** [(bad, neq)] lane masks against a broadcast predicted value:
    [bad] has the lanes whose value cannot encode a state (an
    undefined bit, or a net wider than the packed limit — matching
    the scalar checker's failure), [neq] the remaining lanes whose
    defined value differs from [predicted].  The masks are disjoint
    and confined to [?mask] (default: all active lanes). *)

val check_net_lanes :
  ?mask:int -> t -> Elab.uid -> predicted:int array -> int * int
(** As {!check_net} with a per-lane predicted value (index = lane) —
    the shape batched trace replay needs, where every lane follows a
    different tour trace. *)
