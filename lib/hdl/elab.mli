(** Elaboration: flattens a parsed design into a net list.

    Instances are expanded recursively; nets get full hierarchical
    names ([u0.state]).  A port connected to a plain full-width
    identifier is aliased to the parent net; other connections become
    continuous assignments in the appropriate direction.  Declared bit
    ranges are normalised so that bit 0 is the declared LSB. *)

type uid = int

type enet = {
  id : uid;
  name : string;  (** full hierarchical name *)
  width : int;
  kind : Ast.net_kind;
  attrs : string list;  (** [avp] attributes from the declaration *)
  loc : Ast.loc;  (** declaration site in the source text *)
}

type eexpr =
  | Const of Avp_logic.Bv.t
  | Net of uid
  | Index of uid * eexpr
  | Range of uid * int * int  (** bit offsets after LSB normalisation *)
  | Unop of Ast.unop * eexpr
  | Binop of Ast.binop * eexpr * eexpr
  | Ternary of eexpr * eexpr * eexpr
  | Concat of eexpr list  (** head is MSB *)
  | Repeat of int * eexpr

type elv =
  | Lnet of uid
  | Lindex of uid * eexpr
  | Lrange of uid * int * int
  | Lconcat of elv list

type estmt =
  | Block of estmt list
  | Blocking of elv * eexpr
  | Nonblocking of elv * eexpr
  | If of eexpr * estmt * estmt option
  | Case of eexpr * (eexpr list * estmt) list * estmt option
  | Nop

type process =
  | Assign of elv * eexpr  (** continuous assignment *)
  | Comb of estmt  (** combinational always block *)
  | Seq of (Ast.edge * uid) list * estmt  (** edge-triggered block *)

type t = {
  nets : enet array;
  processes : process array;
  control : bool array;
      (** parallel to [processes]: whether each process appeared inside
          a [control_begin]/[control_end] directive pair *)
  by_name : (string, uid) Hashtbl.t;
  top : string;
  directives : string list;  (** standalone module-level avp directives *)
  top_inputs : bool array;
      (** net id -> the net is a top-level input or inout port *)
  process_locs : Ast.loc array;
      (** parallel to [processes]: source position of the item each
          process was elaborated from (synthetic port-connection
          assignments carry the instance's position) *)
  write_sites : (uid * bool * Ast.loc) list array;
      (** parallel to [processes]: every static assignment site as
          (written net, nonblocking?, assignment position), in source
          order — the per-statement spans [resolve_stmt] drops, kept
          for diagnostics such as the scheduling-race pass *)
}

exception Error of string

val elaborate : ?top:string -> Ast.design -> t
(** Flattens starting at [top] (default: the last module in the
    design).  @raise Error on unresolved modules, width mismatches in
    aliased port connections, or unsupported constructs. *)

val net : t -> string -> enet
(** Look up a net by full hierarchical name.  @raise Not_found. *)

val net_id : t -> string -> uid
val expr_width : t -> eexpr -> int
val expr_nets : eexpr -> uid list
val lv_nets : elv -> uid list
val stmt_reads : estmt -> uid list
val stmt_writes : estmt -> uid list
val pp_summary : Format.formatter -> t -> unit
