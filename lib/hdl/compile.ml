open Avp_logic

exception Comb_loop of string

(* ------------------------------------------------------------------ *)
(* Shared static analysis                                             *)
(* ------------------------------------------------------------------ *)

type units = {
  drivers : (Elab.elv * Elab.eexpr) list array;
  comb : Elab.estmt array;
  seq : ((Ast.edge * Elab.uid) list * Elab.estmt) array;
  readers : int array array;
  unit_count : int;
}

let lv_index_reads lv =
  let rec go acc = function
    | Elab.Lnet _ | Elab.Lrange _ -> acc
    | Elab.Lindex (_, e) -> List.rev_append (Elab.expr_nets e) acc
    | Elab.Lconcat ls -> List.fold_left go acc ls
  in
  go [] lv

(* All reads of one unit are registered together, so a bitset over
   net ids dedups in O(reads) where the old per-list [List.mem] was
   quadratic; prepend order matches the historical lists exactly. *)
let build_readers ~n drivers comb =
  let readers = Array.make n [] in
  let seen = Bytes.make n '\000' in
  let add_unit unit_id reads =
    List.iter
      (fun r ->
        if Bytes.get seen r = '\000' then begin
          Bytes.set seen r '\001';
          readers.(r) <- unit_id :: readers.(r)
        end)
      reads;
    List.iter (fun r -> Bytes.set seen r '\000') reads
  in
  Array.iteri
    (fun id dlist ->
      add_unit id
        (List.concat_map
           (fun (lv, e) -> Elab.expr_nets e @ lv_index_reads lv)
           dlist))
    drivers;
  Array.iteri (fun ci body -> add_unit (n + ci) (Elab.stmt_reads body)) comb;
  Array.map Array.of_list readers

let units (d : Elab.t) =
  let n = Array.length d.Elab.nets in
  let drivers = Array.make n [] in
  let comb = ref [] in
  let seq = ref [] in
  Array.iter
    (fun p ->
      match p with
      | Elab.Assign (lv, e) ->
        List.iter
          (fun id -> drivers.(id) <- (lv, e) :: drivers.(id))
          (Elab.lv_nets lv)
      | Elab.Comb s -> comb := s :: !comb
      | Elab.Seq (edges, s) -> seq := (edges, s) :: !seq)
    d.Elab.processes;
  Array.iteri (fun i l -> drivers.(i) <- List.rev l) drivers;
  let comb = Array.of_list (List.rev !comb) in
  let unit_count = n + Array.length comb in
  {
    drivers;
    comb;
    seq = Array.of_list (List.rev !seq);
    readers = build_readers ~n drivers comb;
    unit_count;
  }

(* ------------------------------------------------------------------ *)
(* Constant folding                                                   *)
(* ------------------------------------------------------------------ *)

let unop_val op v =
  match op with
  | Ast.Not ->
    (match Bv.to_bool v with
     | Some b -> Bv.of_bits [ Bit.of_bool (not b) ]
     | None -> Bv.all_x 1)
  | Ast.Bnot -> Bv.lognot v
  | Ast.Uand -> Bv.of_bits [ Bv.reduce_and v ]
  | Ast.Uor -> Bv.of_bits [ Bv.reduce_or v ]
  | Ast.Uxor -> Bv.of_bits [ Bv.reduce_xor v ]
  | Ast.Neg -> Bv.neg v

let binop_val op va vb =
  let logical f =
    match Bv.to_bool va, Bv.to_bool vb with
    | Some x, Some y -> Bv.of_bits [ Bit.of_bool (f x y) ]
    | _ -> Bv.all_x 1
  in
  match op with
  | Ast.Add -> Bv.add va vb
  | Ast.Sub -> Bv.sub va vb
  | Ast.Mul -> Bv.mul va vb
  | Ast.Band -> Bv.logand va vb
  | Ast.Bor -> Bv.logor va vb
  | Ast.Bxor -> Bv.logxor va vb
  | Ast.Land -> logical ( && )
  | Ast.Lor -> logical ( || )
  | Ast.Eq -> Bv.of_bits [ Bv.eq va vb ]
  | Ast.Neq -> Bv.of_bits [ Bv.neq va vb ]
  | Ast.Ceq -> Bv.of_bits [ Bv.case_eq va vb ]
  | Ast.Cneq -> Bv.of_bits [ Bit.lognot (Bv.case_eq va vb) ]
  | Ast.Lt -> Bv.of_bits [ Bv.lt va vb ]
  | Ast.Le -> Bv.of_bits [ Bv.le va vb ]
  | Ast.Gt -> Bv.of_bits [ Bv.gt va vb ]
  | Ast.Ge -> Bv.of_bits [ Bv.ge va vb ]
  | Ast.Shl -> Bv.shift_left va vb
  | Ast.Shr -> Bv.shift_right va vb

let const_of = function Elab.Const v -> Some v | _ -> None

let rec fold (e : Elab.eexpr) : Elab.eexpr =
  match e with
  | Elab.Const _ | Elab.Net _ | Elab.Range _ -> e
  | Elab.Index (id, i) -> Elab.Index (id, fold i)
  | Elab.Unop (op, a) ->
    let a = fold a in
    (match const_of a with
     | Some v -> Elab.Const (unop_val op v)
     | None -> Elab.Unop (op, a))
  | Elab.Binop (op, a, b) ->
    let a = fold a and b = fold b in
    (match const_of a, const_of b with
     | Some va, Some vb -> Elab.Const (binop_val op va vb)
     | _ -> Elab.Binop (op, a, b))
  | Elab.Ternary (c, a, b) ->
    let c = fold c in
    (match const_of c with
     | Some vc ->
       (match Bv.to_bool vc with
        | Some true -> fold a
        | Some false -> fold b
        | None ->
          let a = fold a and b = fold b in
          (match const_of a, const_of b with
           | Some va, Some vb -> Elab.Const (Bv.mux ~sel:Bit.X va vb)
           | _ -> Elab.Ternary (c, a, b)))
     | None -> Elab.Ternary (c, fold a, fold b))
  | Elab.Concat es ->
    let es = List.map fold es in
    (match es with
     | Elab.Const v0 :: rest
       when List.for_all (fun e -> const_of e <> None) rest ->
       Elab.Const
         (List.fold_left
            (fun acc e ->
              match e with
              | Elab.Const v -> Bv.concat acc v
              | _ -> assert false)
            v0 rest)
     | _ -> Elab.Concat es)
  | Elab.Repeat (n, a) ->
    let a = fold a in
    (match const_of a with
     | Some v when n > 0 -> Elab.Const (Bv.repeat n v)
     | _ -> Elab.Repeat (n, a))

(* ------------------------------------------------------------------ *)
(* Proven-invariant folding                                           *)
(* ------------------------------------------------------------------ *)

(* [facts.(id) = Some c] promises the net holds [c] (possibly with
   x/z bits) at EVERY program point of every reachable execution —
   power-on values, mid-settle transients and intra-process blocking
   overlays included.  Under that contract substituting the constant
   for any read of the net is behavior-preserving in both engines.
   The promise extends over stimulus too: a caller may only poke or
   force nets its facts left unconstrained. *)
type facts = Bv.t option array

let make_facts (d : Elab.t) consts : facts =
  let fx = Array.make (Array.length d.Elab.nets) None in
  List.iter
    (fun (id, c) ->
      fx.(id) <- Some (Bv.resize c d.Elab.nets.(id).Elab.width))
    consts;
  fx

let facts_count (fx : facts) =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 fx

let rec subst (fx : facts) (e : Elab.eexpr) : Elab.eexpr =
  match e with
  | Elab.Const _ -> e
  | Elab.Net id -> (
    match fx.(id) with Some c -> Elab.Const c | None -> e)
  | Elab.Range (id, hi, lo) -> (
    match fx.(id) with
    | Some c -> Elab.Const (Bv.select c ~hi ~lo)
    | None -> e)
  | Elab.Index (id, i) -> Elab.Index (id, subst fx i)
  | Elab.Unop (op, a) -> Elab.Unop (op, subst fx a)
  | Elab.Binop (op, a, b) -> Elab.Binop (op, subst fx a, subst fx b)
  | Elab.Ternary (c, a, b) ->
    Elab.Ternary (subst fx c, subst fx a, subst fx b)
  | Elab.Concat es -> Elab.Concat (List.map (subst fx) es)
  | Elab.Repeat (n, a) -> Elab.Repeat (n, subst fx a)

let fold_facts fx e = fold (subst fx e)

(* Truth of a constant condition under engine semantics: both the
   interpreter and the kernels take the else path unless the value is
   definitely true (op_jf: "jump unless definitely true"). *)
let const_truth c =
  match Bv.planes c with
  | Some (v, u) -> v land lnot u <> 0
  | None -> Bv.to_bool c = Some true

let rec subst_lv fx (lv : Elab.elv) : Elab.elv =
  match lv with
  | Elab.Lnet _ | Elab.Lrange _ -> lv
  | Elab.Lindex (id, i) -> Elab.Lindex (id, fold_facts fx i)
  | Elab.Lconcat ls -> Elab.Lconcat (List.map (subst_lv fx) ls)

let rec simpl_stmt fx (s : Elab.estmt) : Elab.estmt =
  match s with
  | Elab.Nop -> Elab.Nop
  | Elab.Block ss -> (
    match
      List.filter
        (fun s -> s <> Elab.Nop)
        (List.map (simpl_stmt fx) ss)
    with
    | [] -> Elab.Nop
    | [ s ] -> s
    | ss -> Elab.Block ss)
  | Elab.Blocking (lv, e) -> Elab.Blocking (subst_lv fx lv, fold_facts fx e)
  | Elab.Nonblocking (lv, e) ->
    Elab.Nonblocking (subst_lv fx lv, fold_facts fx e)
  | Elab.If (c, tb, eb) -> (
    let c = fold_facts fx c in
    match const_of c with
    | Some vc ->
      if const_truth vc then simpl_stmt fx tb
      else (
        match eb with Some s -> simpl_stmt fx s | None -> Elab.Nop)
    | None ->
      Elab.If (c, simpl_stmt fx tb, Option.map (simpl_stmt fx) eb))
  | Elab.Case (sel, items, dflt) -> (
    let sel = fold_facts fx sel in
    let items =
      List.map
        (fun (labels, body) -> (List.map (fold_facts fx) labels, body))
        items
    in
    let static =
      match const_of sel with
      | None -> None
      | Some vs ->
        (* The chain tests case-equality, which is total on 4-state
           values, so a fully-constant chain decides statically. *)
        let rec pick = function
          | [] ->
            Some (match dflt with Some s -> simpl_stmt fx s | None -> Elab.Nop)
          | (labels, body) :: rest ->
            let rec label_match = function
              | [] -> Some false
              | l :: ls -> (
                match const_of l with
                | None -> None
                | Some vl ->
                  if Bv.to_int (binop_val Ast.Ceq vs vl) = Some 1 then
                    Some true
                  else label_match ls)
            in
            (match label_match labels with
             | Some true -> Some (simpl_stmt fx body)
             | Some false -> pick rest
             | None -> None)
        in
        pick items
    in
    match static with
    | Some s -> s
    | None ->
      Elab.Case
        ( sel,
          List.map (fun (ls, body) -> (ls, simpl_stmt fx body)) items,
          Option.map (simpl_stmt fx) dflt ))

(* Specialize a design under proven invariants: constants substituted
   into every expression, guards that become constant resolved to
   their taken branch.  The process array keeps its shape (nothing is
   ever removed, bodies may shrink to Nop), so unit numbering and the
   schemata IR's process-for-process mirror stay intact; re-running
   [units] on the result recomputes the reader lists, which is where
   the settle-time win comes from — pruned reads stop waking their
   old units.  Both engines consume the result: the scalar kernel
   through [compile ?facts], the bit-sliced kernel through
   [Sliced.create ?facts]. *)
let specialize (fx : facts) (d : Elab.t) : Elab.t =
  {
    d with
    Elab.processes =
      Array.map
        (function
          | Elab.Assign (lv, e) ->
            Elab.Assign (subst_lv fx lv, fold_facts fx e)
          | Elab.Comb s -> Elab.Comb (simpl_stmt fx s)
          | Elab.Seq (edges, s) -> Elab.Seq (edges, simpl_stmt fx s))
        d.Elab.processes;
  }

(* ------------------------------------------------------------------ *)
(* Opcodes                                                            *)
(* ------------------------------------------------------------------ *)

(* Flat int-array programs.  Each opcode is followed by its inline
   operands; widths are encoded as bit masks where possible.  Ops
   ending in [s] read nets through the sequential-process overlay. *)
let op_halt = 0
let op_push = 1 (* v u *)
let op_load = 2 (* id *)
let op_loads = 3 (* id *)
let op_select = 4 (* lo m *)
let op_index = 5 (* id w *)
let op_indexs = 6 (* id w *)
let op_notl = 7
let op_bnot = 8 (* m *)
let op_uand = 9 (* m *)
let op_uor = 10
let op_uxor = 11
let op_neg = 12 (* m *)
let op_add = 13 (* m *)
let op_sub = 14 (* m *)
let op_mul = 15 (* m *)
let op_band = 16 (* m *)
let op_bor = 17 (* m *)
let op_bxor = 18 (* m *)
let op_land = 19
let op_lor = 20
let op_eq = 21
let op_neq = 22
let op_ceq = 23
let op_cneq = 24
let op_lt = 25
let op_le = 26
let op_gt = 27
let op_ge = 28
let op_shl = 29 (* w m *)
let op_shr = 30 (* w *)
let op_concat = 31 (* wlo *)
let op_repeat = 32 (* n w *)
let op_muxc = 33 (* m *)
let op_mask = 34 (* m *)
let op_resolve = 35 (* m *)
let op_ins = 36 (* lo m *)
let op_insix = 37 (* w *)
let op_stmp = 38 (* k *)
let op_ltmp = 39 (* k *)
let op_jmp = 40 (* addr *)
let op_jf = 41 (* addr; pop, jump unless definitely true *)
let op_wrc = 42 (* id lo m *)
let op_wrcix = 43 (* id *)
let op_wrs = 44 (* id lo m *)
let op_wrsix = 45 (* id *)
let op_wrn = 46 (* id lo m *)
let op_wrnix = 47 (* id *)

(* ------------------------------------------------------------------ *)
(* Assembler                                                          *)
(* ------------------------------------------------------------------ *)

exception Unsupported

type asm = {
  ad : Elab.t;
  seq_ctx : bool;
  mutable buf : int array;
  mutable len : int;
  mutable depth : int;
  mutable maxd : int;
  mutable ntemps : int;
  (* Per-top-level-expression CSE: occurrence counts and assigned
     temp slots, keyed by structural equality of subtrees. *)
  counts : (Elab.eexpr, int) Hashtbl.t;
  slots : (Elab.eexpr, int * int) Hashtbl.t;
}

let new_asm d ~seq_ctx =
  {
    ad = d;
    seq_ctx;
    buf = Array.make 64 0;
    len = 0;
    depth = 0;
    maxd = 0;
    ntemps = 0;
    counts = Hashtbl.create 16;
    slots = Hashtbl.create 16;
  }

let out a x =
  if a.len = Array.length a.buf then begin
    let b = Array.make (2 * a.len) 0 in
    Array.blit a.buf 0 b 0 a.len;
    a.buf <- b
  end;
  a.buf.(a.len) <- x;
  a.len <- a.len + 1

let adj a d =
  a.depth <- a.depth + d;
  if a.depth > a.maxd then a.maxd <- a.depth

let temp a =
  let k = a.ntemps in
  a.ntemps <- k + 1;
  k

let chkw w = if w < 1 || w > Bv.packed_width_limit then raise Unsupported else w
let msk w = (1 lsl w) - 1
let nw a id = a.ad.Elab.nets.(id).Elab.width

let iter_children f (e : Elab.eexpr) =
  match e with
  | Elab.Const _ | Elab.Net _ | Elab.Range _ -> ()
  | Elab.Index (_, i) -> f i
  | Elab.Unop (_, x) -> f x
  | Elab.Binop (_, x, y) -> f x; f y
  | Elab.Ternary (c, x, y) -> f c; f x; f y
  | Elab.Concat es -> List.iter f es
  | Elab.Repeat (_, x) -> f x

let rec count_occ a e =
  match e with
  | Elab.Const _ | Elab.Net _ | Elab.Range _ -> ()
  | _ ->
    (match Hashtbl.find_opt a.counts e with
     | Some c -> Hashtbl.replace a.counts e (c + 1)
     | None ->
       Hashtbl.add a.counts e 1;
       iter_children (count_occ a) e)

(* Emit [e], leaving its planes on the stack; returns the static
   result width.  Repeated subtrees are computed once into a temp. *)
let rec emit_e a e : int =
  match Hashtbl.find_opt a.slots e with
  | Some (k, w) ->
    out a op_ltmp; out a k; adj a 1;
    w
  | None ->
    let w = emit_node a e in
    (match Hashtbl.find_opt a.counts e with
     | Some c when c >= 2 ->
       let k = temp a in
       out a op_stmp; out a k;
       out a op_ltmp; out a k;
       Hashtbl.replace a.slots e (k, w)
     | _ -> ());
    w

and emit_node a e : int =
  match e with
  | Elab.Const v ->
    let w = chkw (Bv.width v) in
    (match Bv.planes v with
     | Some (pv, pu) -> out a op_push; out a pv; out a pu; adj a 1
     | None -> raise Unsupported);
    w
  | Elab.Net id ->
    let w = chkw (nw a id) in
    out a (if a.seq_ctx then op_loads else op_load);
    out a id; adj a 1;
    w
  | Elab.Index (id, idx) ->
    ignore (chkw (nw a id));
    ignore (emit_e a idx);
    out a (if a.seq_ctx then op_indexs else op_index);
    out a id; out a (nw a id);
    1
  | Elab.Range (id, hi, lo) ->
    ignore (chkw (nw a id));
    let w = hi - lo + 1 in
    out a (if a.seq_ctx then op_loads else op_load);
    out a id; adj a 1;
    out a op_select; out a lo; out a (msk w);
    w
  | Elab.Unop (op, x) ->
    let wx = emit_e a x in
    (match op with
     | Ast.Not -> out a op_notl; 1
     | Ast.Bnot -> out a op_bnot; out a (msk wx); wx
     | Ast.Uand -> out a op_uand; out a (msk wx); 1
     | Ast.Uor -> out a op_uor; 1
     | Ast.Uxor -> out a op_uxor; 1
     | Ast.Neg -> out a op_neg; out a (msk wx); wx)
  | Elab.Binop (op, x, y) ->
    let wx = emit_e a x in
    let wy = emit_e a y in
    let arith o =
      let w = chkw (max wx wy) in
      out a o; out a (msk w); adj a (-1);
      w
    in
    let scalar o = out a o; adj a (-1); 1 in
    (match op with
     | Ast.Add -> arith op_add
     | Ast.Sub -> arith op_sub
     | Ast.Mul -> arith op_mul
     | Ast.Band -> arith op_band
     | Ast.Bor -> arith op_bor
     | Ast.Bxor -> arith op_bxor
     | Ast.Land -> scalar op_land
     | Ast.Lor -> scalar op_lor
     | Ast.Eq -> scalar op_eq
     | Ast.Neq -> scalar op_neq
     | Ast.Ceq -> scalar op_ceq
     | Ast.Cneq -> scalar op_cneq
     | Ast.Lt -> scalar op_lt
     | Ast.Le -> scalar op_le
     | Ast.Gt -> scalar op_gt
     | Ast.Ge -> scalar op_ge
     | Ast.Shl ->
       (* Result width is the left operand's, unlike [Elab.expr_width]. *)
       out a op_shl; out a wx; out a (msk wx); adj a (-1);
       wx
     | Ast.Shr ->
       out a op_shr; out a wx; adj a (-1);
       wx)
  | Elab.Ternary (c, x, y) ->
    (* Arms are pure, so evaluate both and select branch-free; this
       only types when the arms agree on width (the interpreter's
       dynamic result width is the taken arm's). *)
    ignore (emit_e a c);
    let wx = emit_e a x in
    let wy = emit_e a y in
    if wx <> wy then raise Unsupported;
    out a op_muxc; out a (msk wx); adj a (-2);
    wx
  | Elab.Concat es ->
    (match es with
     | [] -> invalid_arg "empty concat"
     | first :: rest ->
       let w0 = emit_e a first in
       List.fold_left
         (fun wacc e ->
           let we = emit_e a e in
           let w = chkw (wacc + we) in
           out a op_concat; out a we; adj a (-1);
           w)
         w0 rest)
  | Elab.Repeat (n, x) ->
    let wx = emit_e a x in
    let w = chkw (n * wx) in
    out a op_repeat; out a n; out a wx;
    w

(* Top-level expression: fold constants, number common subtrees. *)
let emit_expr a e =
  let e = fold e in
  Hashtbl.reset a.counts;
  Hashtbl.reset a.slots;
  count_occ a e;
  emit_e a e

let rec lvw a = function
  | Elab.Lnet id -> nw a id
  | Elab.Lindex _ -> 1
  | Elab.Lrange (_, hi, lo) -> hi - lo + 1
  | Elab.Lconcat ls -> List.fold_left (fun s l -> s + lvw a l) 0 ls

(* ------------------------------------------------------------------ *)
(* Statement compilation                                              *)
(* ------------------------------------------------------------------ *)

let wr_ops a ~nonblocking =
  if not a.seq_ctx then (op_wrc, op_wrcix)
  else if nonblocking then (op_wrn, op_wrnix)
  else (op_wrs, op_wrsix)

let rec emit_stmt a s =
  match s with
  | Elab.Block ss -> List.iter (emit_stmt a) ss
  | Elab.Nop -> ()
  | Elab.Blocking (lv, e) -> emit_assign a lv e (wr_ops a ~nonblocking:false)
  | Elab.Nonblocking (lv, e) ->
    emit_assign a lv e (wr_ops a ~nonblocking:true)
  | Elab.If (c, tb, eb) ->
    ignore (emit_expr a c);
    out a op_jf;
    let p1 = a.len in
    out a 0; adj a (-1);
    emit_stmt a tb;
    out a op_jmp;
    let p2 = a.len in
    out a 0;
    a.buf.(p1) <- a.len;
    (match eb with Some s -> emit_stmt a s | None -> ());
    a.buf.(p2) <- a.len
  | Elab.Case (sel, items, dflt) ->
    ignore (emit_expr a sel);
    let k = temp a in
    out a op_stmp; out a k; adj a (-1);
    let end_pp = ref [] in
    List.iter
      (fun (labels, body) ->
        (match labels with
         | [] -> out a op_push; out a 0; out a 0; adj a 1
         | l0 :: rest ->
           let match1 l =
             out a op_ltmp; out a k; adj a 1;
             ignore (emit_expr a l);
             out a op_ceq; adj a (-1)
           in
           match1 l0;
           List.iter
             (fun l ->
               match1 l;
               out a op_bor; out a 1; adj a (-1))
             rest);
        out a op_jf;
        let pn = a.len in
        out a 0; adj a (-1);
        emit_stmt a body;
        out a op_jmp;
        end_pp := a.len :: !end_pp;
        out a 0;
        a.buf.(pn) <- a.len)
      items;
    (match dflt with Some s -> emit_stmt a s | None -> ());
    List.iter (fun p -> a.buf.(p) <- a.len) !end_pp

(* Resize the just-emitted RHS (width [wr]) to [total], then scatter
   it across the lvalue pieces LSB-first, mirroring [Sim.lv_pieces]. *)
and emit_assign a lv e (ws, wix) =
  let total = chkw (lvw a lv) in
  let wr = emit_expr a e in
  if wr > total then begin out a op_mask; out a (msk total) end;
  match lv with
  | Elab.Lnet id ->
    out a ws; out a id; out a 0; out a (msk total); adj a (-1)
  | Elab.Lrange (id, _hi, lo) ->
    out a ws; out a id; out a lo; out a (msk total); adj a (-1)
  | Elab.Lindex (id, idx) ->
    ignore (emit_expr a idx);
    out a wix; out a id; adj a (-2)
  | Elab.Lconcat _ ->
    let k = temp a in
    out a op_stmp; out a k; adj a (-1);
    let rec walk lv off =
      match lv with
      | Elab.Lnet id ->
        let w = chkw (nw a id) in
        out a op_ltmp; out a k; adj a 1;
        out a op_select; out a off; out a (msk w);
        out a ws; out a id; out a 0; out a (msk w); adj a (-1);
        off + w
      | Elab.Lrange (id, hi, lo) ->
        let w = hi - lo + 1 in
        out a op_ltmp; out a k; adj a 1;
        out a op_select; out a off; out a (msk w);
        out a ws; out a id; out a lo; out a (msk w); adj a (-1);
        off + w
      | Elab.Lindex (id, idx) ->
        out a op_ltmp; out a k; adj a 1;
        out a op_select; out a off; out a 1;
        ignore (emit_expr a idx);
        out a wix; out a id; adj a (-2);
        off + 1
      | Elab.Lconcat ls -> List.fold_left (fun o l -> walk l o) off (List.rev ls)
    in
    ignore (walk lv 0)

(* One program per driven net: fold every driver's contribution (its
   RHS scattered over an all-Z base, restricted to pieces that hit
   this net) with wire resolution, then write the result. *)
let emit_driver a nid dlist =
  let wn = chkw (nw a nid) in
  let m = msk wn in
  out a op_push; out a 0; out a m; adj a 1;
  List.iter
    (fun (lv, e) ->
      (match lv with
       | Elab.Lnet id when id = nid ->
         (* Single full-width piece: contribution = resized RHS. *)
         let wr = emit_expr a e in
         if wr > wn then begin out a op_mask; out a m end
       | _ ->
         let total = chkw (lvw a lv) in
         let wr = emit_expr a e in
         if wr > total then begin out a op_mask; out a (msk total) end;
         let k = temp a in
         out a op_stmp; out a k; adj a (-1);
         out a op_push; out a 0; out a m; adj a 1;
         let rec walk lv off =
           match lv with
           | Elab.Lnet id ->
             let w = nw a id in
             if id = nid then begin
               out a op_ltmp; out a k; adj a 1;
               out a op_select; out a off; out a (msk w);
               out a op_ins; out a 0; out a (msk w); adj a (-1)
             end;
             off + w
           | Elab.Lrange (id, hi, lo) ->
             let w = hi - lo + 1 in
             if id = nid then begin
               out a op_ltmp; out a k; adj a 1;
               out a op_select; out a off; out a (msk w);
               out a op_ins; out a lo; out a (msk w); adj a (-1)
             end;
             off + w
           | Elab.Lindex (id, idx) ->
             if id = nid then begin
               out a op_ltmp; out a k; adj a 1;
               out a op_select; out a off; out a 1;
               ignore (emit_expr a idx);
               out a op_insix; out a wn; adj a (-2)
             end;
             off + 1
           | Elab.Lconcat ls ->
             List.fold_left (fun o l -> walk l o) off (List.rev ls)
         in
         ignore (walk lv 0));
      out a op_resolve; out a m; adj a (-1))
    dlist;
  out a op_wrc; out a nid; out a 0; out a m; adj a (-1)

(* ------------------------------------------------------------------ *)
(* Runtime state                                                      *)
(* ------------------------------------------------------------------ *)

type t = {
  d : Elab.t;
  u : units;
  widths : int array;
  nv : int array; (* value plane per net *)
  nu : int array; (* unknown plane per net *)
  forced : Bytes.t;
  progs : int array array; (* per unit; [||] when nothing to run *)
  seqp : ((Ast.edge * Elab.uid) list * int array) array;
  (* Scratch buffers, sized at compile time: no allocation while
     executing programs. *)
  sv : int array;
  su : int array;
  tv : int array;
  tu : int array;
  ov_v : int array;
  ov_u : int array;
  ov_set : Bytes.t;
  touched : int array;
  mutable n_touched : int;
  mutable nba_id : int array;
  mutable nba_lo : int array;
  mutable nba_m : int array;
  mutable nba_v : int array;
  mutable nba_u : int array;
  mutable n_nba : int;
  queue : int array; (* ring buffer of unit ids *)
  mutable qh : int;
  mutable qt : int;
  in_queue : Bytes.t;
  mutable dirty_all : bool;
  mutable time : int;
  mutable last_changed : int;
}

let design t = t.d
let time t = t.time

let enqueue t unit =
  if Bytes.get t.in_queue unit = '\000' then begin
    Bytes.set t.in_queue unit '\001';
    t.queue.(t.qt) <- unit;
    t.qt <- (t.qt + 1) mod Array.length t.queue
  end

let mark_readers t id =
  let rs = t.u.readers.(id) in
  for i = 0 to Array.length rs - 1 do
    enqueue t rs.(i)
  done

(* [mark] also records the net for Comb_loop diagnostics, matching
   the interpreter's note_change / mark_net_changed split. *)
let mark t id =
  t.last_changed <- id;
  mark_readers t id

let nba_push t id lo m v u =
  let cap = Array.length t.nba_id in
  if t.n_nba = cap then begin
    let grow a =
      let b = Array.make (2 * cap) 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    t.nba_id <- grow t.nba_id;
    t.nba_lo <- grow t.nba_lo;
    t.nba_m <- grow t.nba_m;
    t.nba_v <- grow t.nba_v;
    t.nba_u <- grow t.nba_u
  end;
  let i = t.n_nba in
  t.nba_id.(i) <- id;
  t.nba_lo.(i) <- lo;
  t.nba_m.(i) <- m;
  t.nba_v.(i) <- v;
  t.nba_u.(i) <- u;
  t.n_nba <- i + 1

(* Truth value of planes: 1 definitely true, 0 definitely false,
   -1 undecidable. *)
let[@inline] tb v u = if v land lnot u <> 0 then 1 else if v lor u = 0 then 0 else -1

let[@inline] parity x =
  let x = x lxor (x lsr 32) in
  let x = x lxor (x lsr 16) in
  let x = x lxor (x lsr 8) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

(* ------------------------------------------------------------------ *)
(* The stack machine                                                  *)
(* ------------------------------------------------------------------ *)

let exec t (code : int array) =
  let sv = t.sv and su = t.su in
  let nv = t.nv and nu = t.nu in
  let sp = ref 0 in
  let pc = ref 0 in
  let running = ref true in
  (* Dispatch is a dense integer match — the compiler turns it into a
     jump table, which matters: dispatch dominates the kernel on small
     programs.  Stack and code indices are verified by the assembler
     ([finish] checks the net stack depth of every program and sizes
     the buffers to the maximum), so the accesses are unchecked. *)
  while !running do
    let op = Array.unsafe_get code !pc in
    match op with
    | 0 (* halt *) -> running := false
    | 1 (* push v u *) ->
      Array.unsafe_set sv !sp (Array.unsafe_get code (!pc + 1));
      Array.unsafe_set su !sp (Array.unsafe_get code (!pc + 2));
      incr sp;
      pc := !pc + 3
    | 2 (* load id *) ->
      let id = Array.unsafe_get code (!pc + 1) in
      Array.unsafe_set sv !sp (Array.unsafe_get nv id);
      Array.unsafe_set su !sp (Array.unsafe_get nu id);
      incr sp;
      pc := !pc + 2
    | 3 (* loads id *) ->
      let id = Array.unsafe_get code (!pc + 1) in
      if Bytes.unsafe_get t.ov_set id = '\001' then begin
        Array.unsafe_set sv !sp (Array.unsafe_get t.ov_v id);
        Array.unsafe_set su !sp (Array.unsafe_get t.ov_u id)
      end
      else begin
        Array.unsafe_set sv !sp (Array.unsafe_get nv id);
        Array.unsafe_set su !sp (Array.unsafe_get nu id)
      end;
      incr sp;
      pc := !pc + 2
    | 4 (* select lo m *) ->
      let lo = Array.unsafe_get code (!pc + 1)
      and m = Array.unsafe_get code (!pc + 2) in
      let j = !sp - 1 in
      Array.unsafe_set sv j ((Array.unsafe_get sv j lsr lo) land m);
      Array.unsafe_set su j ((Array.unsafe_get su j lsr lo) land m);
      pc := !pc + 3
    | 5 (* index id w *) | 6 (* indexs id w *) ->
      let id = Array.unsafe_get code (!pc + 1)
      and w = Array.unsafe_get code (!pc + 2) in
      let j = !sp - 1 in
      let iv = Array.unsafe_get sv j and iu = Array.unsafe_get su j in
      if iu <> 0 || iv >= w then begin
        Array.unsafe_set sv j 1;
        Array.unsafe_set su j 1
      end
      else begin
        let bv, bu =
          if op = 6 && Bytes.unsafe_get t.ov_set id = '\001' then
            (Array.unsafe_get t.ov_v id, Array.unsafe_get t.ov_u id)
          else (Array.unsafe_get nv id, Array.unsafe_get nu id)
        in
        Array.unsafe_set sv j ((bv lsr iv) land 1);
        Array.unsafe_set su j ((bu lsr iv) land 1)
      end;
      pc := !pc + 3
    | 7 (* notl *) ->
      let j = !sp - 1 in
      (match tb (Array.unsafe_get sv j) (Array.unsafe_get su j) with
       | 1 ->
         Array.unsafe_set sv j 0;
         Array.unsafe_set su j 0
       | 0 ->
         Array.unsafe_set sv j 1;
         Array.unsafe_set su j 0
       | _ ->
         Array.unsafe_set sv j 1;
         Array.unsafe_set su j 1);
      pc := !pc + 1
    | 8 (* bnot m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 1 in
      let v = Array.unsafe_get sv j and u = Array.unsafe_get su j in
      Array.unsafe_set sv j (((lnot v) land (lnot u) land m) lor u);
      Array.unsafe_set su j u;
      pc := !pc + 2
    | 9 (* uand m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 1 in
      let v = Array.unsafe_get sv j and u = Array.unsafe_get su j in
      if (lnot v) land (lnot u) land m <> 0 then begin
        Array.unsafe_set sv j 0;
        Array.unsafe_set su j 0
      end
      else if u = 0 then begin
        Array.unsafe_set sv j 1;
        Array.unsafe_set su j 0
      end
      else begin
        Array.unsafe_set sv j 1;
        Array.unsafe_set su j 1
      end;
      pc := !pc + 2
    | 10 (* uor *) ->
      let j = !sp - 1 in
      let v = Array.unsafe_get sv j and u = Array.unsafe_get su j in
      if v land lnot u <> 0 then begin
        Array.unsafe_set sv j 1;
        Array.unsafe_set su j 0
      end
      else if v lor u = 0 then begin
        Array.unsafe_set sv j 0;
        Array.unsafe_set su j 0
      end
      else begin
        Array.unsafe_set sv j 1;
        Array.unsafe_set su j 1
      end;
      pc := !pc + 1
    | 11 (* uxor *) ->
      let j = !sp - 1 in
      if Array.unsafe_get su j <> 0 then begin
        Array.unsafe_set sv j 1;
        Array.unsafe_set su j 1
      end
      else begin
        Array.unsafe_set sv j (parity (Array.unsafe_get sv j));
        Array.unsafe_set su j 0
      end;
      pc := !pc + 1
    | 12 (* neg m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 1 in
      if Array.unsafe_get su j <> 0 then begin
        Array.unsafe_set sv j m;
        Array.unsafe_set su j m
      end
      else Array.unsafe_set sv j (-Array.unsafe_get sv j land m);
      pc := !pc + 2
    | 13 (* add m *) | 14 (* sub m *) | 15 (* mul m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      let av = Array.unsafe_get sv j and au = Array.unsafe_get su j in
      let bv = Array.unsafe_get sv (j + 1)
      and bu = Array.unsafe_get su (j + 1) in
      if au lor bu <> 0 then begin
        Array.unsafe_set sv j m;
        Array.unsafe_set su j m
      end
      else begin
        let r =
          if op = 13 then av + bv else if op = 14 then av - bv else av * bv
        in
        Array.unsafe_set sv j (r land m);
        Array.unsafe_set su j 0
      end;
      sp := j + 1;
      pc := !pc + 2
    | 16 (* band m *) | 17 (* bor m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      let av = Array.unsafe_get sv j and au = Array.unsafe_get su j in
      let bv = Array.unsafe_get sv (j + 1)
      and bu = Array.unsafe_get su (j + 1) in
      let a1 = av land lnot au and b1 = bv land lnot bu in
      let a0 = (lnot av) land (lnot au) and b0 = (lnot bv) land (lnot bu) in
      let r1, r0 =
        if op = 16 then (a1 land b1, a0 lor b0) else (a1 lor b1, a0 land b0)
      in
      let rx = m land lnot (r0 lor r1) in
      Array.unsafe_set sv j ((r1 land m) lor rx);
      Array.unsafe_set su j rx;
      sp := j + 1;
      pc := !pc + 2
    | 18 (* bxor m *) ->
      let _m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      let av = Array.unsafe_get sv j and au = Array.unsafe_get su j in
      let bv = Array.unsafe_get sv (j + 1)
      and bu = Array.unsafe_get su (j + 1) in
      let rx = au lor bu in
      Array.unsafe_set sv j (((av lxor bv) land lnot rx) lor rx);
      Array.unsafe_set su j rx;
      sp := j + 1;
      pc := !pc + 2
    | 19 (* land *) | 20 (* lor *) | 21 (* eq *) | 22 (* neq *)
    | 23 (* ceq *) | 24 (* cneq *) | 25 (* lt *) | 26 (* le *)
    | 27 (* gt *) | 28 (* ge *) ->
      let j = !sp - 2 in
      let av = Array.unsafe_get sv j and au = Array.unsafe_get su j in
      let bv = Array.unsafe_get sv (j + 1)
      and bu = Array.unsafe_get su (j + 1) in
      let set1 b =
        Array.unsafe_set sv j (if b then 1 else 0);
        Array.unsafe_set su j 0
      in
      let setx () =
        Array.unsafe_set sv j 1;
        Array.unsafe_set su j 1
      in
      (if op = 23 || op = 24 then
         set1 ((av = bv && au = bu) = (op = 23))
       else if op = 19 || op = 20 then begin
         let ta = tb av au and tbv = tb bv bu in
         if ta < 0 || tbv < 0 then setx ()
         else if op = 19 then set1 (ta = 1 && tbv = 1)
         else set1 (ta = 1 || tbv = 1)
       end
       else if au lor bu <> 0 then setx ()
       else if op = 21 then set1 (av = bv)
       else if op = 22 then set1 (av <> bv)
       else if op = 25 then set1 (av < bv)
       else if op = 26 then set1 (av <= bv)
       else if op = 27 then set1 (av > bv)
       else set1 (av >= bv));
      sp := j + 1;
      pc := !pc + 1
    | 29 (* shl w m *) | 30 (* shr w *) ->
      let w = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      let av = Array.unsafe_get sv j and au = Array.unsafe_get su j in
      let bv = Array.unsafe_get sv (j + 1)
      and bu = Array.unsafe_get su (j + 1) in
      (if op = 29 then begin
         let m = Array.unsafe_get code (!pc + 2) in
         if bu <> 0 then begin
           Array.unsafe_set sv j m;
           Array.unsafe_set su j m
         end
         else if bv >= w then begin
           Array.unsafe_set sv j 0;
           Array.unsafe_set su j 0
         end
         else begin
           Array.unsafe_set sv j ((av lsl bv) land m);
           Array.unsafe_set su j ((au lsl bv) land m)
         end
       end
       else if bu <> 0 then begin
         let m = msk w in
         Array.unsafe_set sv j m;
         Array.unsafe_set su j m
       end
       else if bv >= w then begin
         Array.unsafe_set sv j 0;
         Array.unsafe_set su j 0
       end
       else begin
         Array.unsafe_set sv j (av lsr bv);
         Array.unsafe_set su j (au lsr bv)
       end);
      sp := j + 1;
      pc := !pc + (if op = 29 then 3 else 2)
    | 31 (* concat wlo *) ->
      let wlo = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      Array.unsafe_set sv j
        ((Array.unsafe_get sv j lsl wlo) lor Array.unsafe_get sv (j + 1));
      Array.unsafe_set su j
        ((Array.unsafe_get su j lsl wlo) lor Array.unsafe_get su (j + 1));
      sp := j + 1;
      pc := !pc + 2
    | 32 (* repeat n w *) ->
      let n = Array.unsafe_get code (!pc + 1)
      and w = Array.unsafe_get code (!pc + 2) in
      let j = !sp - 1 in
      let av = Array.unsafe_get sv j and au = Array.unsafe_get su j in
      let rv = ref 0 and ru = ref 0 in
      for i = 0 to n - 1 do
        rv := !rv lor (av lsl (i * w));
        ru := !ru lor (au lsl (i * w))
      done;
      Array.unsafe_set sv j !rv;
      Array.unsafe_set su j !ru;
      pc := !pc + 3
    | 33 (* muxc m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 3 in
      let cv = Array.unsafe_get sv j and cu = Array.unsafe_get su j in
      let av = Array.unsafe_get sv (j + 1)
      and au = Array.unsafe_get su (j + 1) in
      let bv = Array.unsafe_get sv (j + 2)
      and bu = Array.unsafe_get su (j + 2) in
      (match tb cv cu with
       | 1 ->
         Array.unsafe_set sv j av;
         Array.unsafe_set su j au
       | 0 ->
         Array.unsafe_set sv j bv;
         Array.unsafe_set su j bu
       | _ ->
         let d = (lnot au) land (lnot bu) land (lnot (av lxor bv)) land m in
         let rx = m land lnot d in
         Array.unsafe_set sv j ((av land d) lor rx);
         Array.unsafe_set su j rx);
      sp := j + 1;
      pc := !pc + 2
    | 34 (* mask m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 1 in
      Array.unsafe_set sv j (Array.unsafe_get sv j land m);
      Array.unsafe_set su j (Array.unsafe_get su j land m);
      pc := !pc + 2
    | 35 (* resolve m *) ->
      let m = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      let av = Array.unsafe_get sv j and au = Array.unsafe_get su j in
      let bv = Array.unsafe_get sv (j + 1)
      and bu = Array.unsafe_get su (j + 1) in
      let az = au land lnot av and bz = bu land lnot bv in
      let only_az = az land lnot bz and only_bz = bz land lnot az in
      let both_z = az land bz in
      let neither = m land lnot (az lor bz) in
      let def_eq = (lnot au) land (lnot bu) land (lnot (av lxor bv)) in
      let rx = neither land lnot def_eq in
      Array.unsafe_set sv j
        ((only_az land bv) lor (only_bz land av)
        lor (neither land def_eq land av)
        lor rx);
      Array.unsafe_set su j
        ((only_az land bu) lor (only_bz land au) lor both_z lor rx);
      sp := j + 1;
      pc := !pc + 2
    | 36 (* ins lo m *) ->
      let lo = Array.unsafe_get code (!pc + 1)
      and m = Array.unsafe_get code (!pc + 2) in
      let j = !sp - 2 in
      let sm = m lsl lo in
      Array.unsafe_set sv j
        ((Array.unsafe_get sv j land lnot sm)
        lor (Array.unsafe_get sv (j + 1) lsl lo));
      Array.unsafe_set su j
        ((Array.unsafe_get su j land lnot sm)
        lor (Array.unsafe_get su (j + 1) lsl lo));
      sp := j + 1;
      pc := !pc + 3
    | 37 (* insix w *) ->
      let w = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 3 in
      let iv = Array.unsafe_get sv (j + 2)
      and iu = Array.unsafe_get su (j + 2) in
      if iu = 0 && iv < w then begin
        let sm = 1 lsl iv in
        Array.unsafe_set sv j
          ((Array.unsafe_get sv j land lnot sm)
          lor (Array.unsafe_get sv (j + 1) lsl iv));
        Array.unsafe_set su j
          ((Array.unsafe_get su j land lnot sm)
          lor (Array.unsafe_get su (j + 1) lsl iv))
      end;
      sp := j + 1;
      pc := !pc + 2
    | 38 (* stmp k *) ->
      let k = Array.unsafe_get code (!pc + 1) in
      decr sp;
      Array.unsafe_set t.tv k (Array.unsafe_get sv !sp);
      Array.unsafe_set t.tu k (Array.unsafe_get su !sp);
      pc := !pc + 2
    | 39 (* ltmp k *) ->
      let k = Array.unsafe_get code (!pc + 1) in
      Array.unsafe_set sv !sp (Array.unsafe_get t.tv k);
      Array.unsafe_set su !sp (Array.unsafe_get t.tu k);
      incr sp;
      pc := !pc + 2
    | 40 (* jmp addr *) -> pc := Array.unsafe_get code (!pc + 1)
    | 41 (* jf addr *) ->
      decr sp;
      if Array.unsafe_get sv !sp land lnot (Array.unsafe_get su !sp) <> 0
      then pc := !pc + 2
      else pc := Array.unsafe_get code (!pc + 1)
    | 42 (* wrc id lo m *) ->
      let id = Array.unsafe_get code (!pc + 1)
      and lo = Array.unsafe_get code (!pc + 2)
      and m = Array.unsafe_get code (!pc + 3) in
      decr sp;
      let j = !sp in
      if Bytes.unsafe_get t.forced id = '\000' then begin
        let sm = m lsl lo in
        let v =
          (Array.unsafe_get nv id land lnot sm)
          lor (Array.unsafe_get sv j lsl lo)
        in
        let u =
          (Array.unsafe_get nu id land lnot sm)
          lor (Array.unsafe_get su j lsl lo)
        in
        if v <> Array.unsafe_get nv id || u <> Array.unsafe_get nu id
        then begin
          Array.unsafe_set nv id v;
          Array.unsafe_set nu id u;
          mark t id
        end
      end;
      pc := !pc + 4
    | 43 (* wrcix id *) ->
      let id = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      sp := j;
      let iv = Array.unsafe_get sv (j + 1)
      and iu = Array.unsafe_get su (j + 1) in
      if iu = 0 && iv < t.widths.(id) && Bytes.unsafe_get t.forced id = '\000'
      then begin
        let sm = 1 lsl iv in
        let v =
          (Array.unsafe_get nv id land lnot sm)
          lor (Array.unsafe_get sv j lsl iv)
        in
        let u =
          (Array.unsafe_get nu id land lnot sm)
          lor (Array.unsafe_get su j lsl iv)
        in
        if v <> Array.unsafe_get nv id || u <> Array.unsafe_get nu id
        then begin
          Array.unsafe_set nv id v;
          Array.unsafe_set nu id u;
          mark t id
        end
      end;
      pc := !pc + 2
    | 44 (* wrs id lo m *) ->
      let id = Array.unsafe_get code (!pc + 1)
      and lo = Array.unsafe_get code (!pc + 2)
      and m = Array.unsafe_get code (!pc + 3) in
      decr sp;
      let j = !sp in
      let bv, bu =
        if Bytes.unsafe_get t.ov_set id = '\001' then
          (Array.unsafe_get t.ov_v id, Array.unsafe_get t.ov_u id)
        else (Array.unsafe_get nv id, Array.unsafe_get nu id)
      in
      let sm = m lsl lo in
      Array.unsafe_set t.ov_v id
        ((bv land lnot sm) lor (Array.unsafe_get sv j lsl lo));
      Array.unsafe_set t.ov_u id
        ((bu land lnot sm) lor (Array.unsafe_get su j lsl lo));
      if Bytes.unsafe_get t.ov_set id = '\000' then begin
        Bytes.unsafe_set t.ov_set id '\001';
        t.touched.(t.n_touched) <- id;
        t.n_touched <- t.n_touched + 1
      end;
      pc := !pc + 4
    | 45 (* wrsix id *) ->
      let id = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      sp := j;
      let iv = Array.unsafe_get sv (j + 1)
      and iu = Array.unsafe_get su (j + 1) in
      if iu = 0 && iv < t.widths.(id) then begin
        let bv, bu =
          if Bytes.unsafe_get t.ov_set id = '\001' then
            (Array.unsafe_get t.ov_v id, Array.unsafe_get t.ov_u id)
          else (Array.unsafe_get nv id, Array.unsafe_get nu id)
        in
        let sm = 1 lsl iv in
        Array.unsafe_set t.ov_v id
          ((bv land lnot sm) lor (Array.unsafe_get sv j lsl iv));
        Array.unsafe_set t.ov_u id
          ((bu land lnot sm) lor (Array.unsafe_get su j lsl iv));
        if Bytes.unsafe_get t.ov_set id = '\000' then begin
          Bytes.unsafe_set t.ov_set id '\001';
          t.touched.(t.n_touched) <- id;
          t.n_touched <- t.n_touched + 1
        end
      end;
      pc := !pc + 2
    | 46 (* wrn id lo m *) ->
      let id = Array.unsafe_get code (!pc + 1)
      and lo = Array.unsafe_get code (!pc + 2)
      and m = Array.unsafe_get code (!pc + 3) in
      decr sp;
      nba_push t id lo m (Array.unsafe_get sv !sp) (Array.unsafe_get su !sp);
      pc := !pc + 4
    | 47 (* wrnix id *) ->
      let id = Array.unsafe_get code (!pc + 1) in
      let j = !sp - 2 in
      sp := j;
      let iv = Array.unsafe_get sv (j + 1)
      and iu = Array.unsafe_get su (j + 1) in
      if iu = 0 && iv < t.widths.(id) then
        nba_push t id iv 1 (Array.unsafe_get sv j) (Array.unsafe_get su j);
      pc := !pc + 2
    | _ -> invalid_arg "Compile.exec: bad opcode"
  done

(* ------------------------------------------------------------------ *)
(* Engine operations                                                  *)
(* ------------------------------------------------------------------ *)

let settle t =
  if t.dirty_all then begin
    t.dirty_all <- false;
    for u = 0 to t.u.unit_count - 1 do
      enqueue t u
    done
  end;
  let budget = 64 * (t.u.unit_count + 4) in
  let executed = ref 0 in
  while t.qh <> t.qt do
    let u = t.queue.(t.qh) in
    t.qh <- (t.qh + 1) mod Array.length t.queue;
    Bytes.set t.in_queue u '\000';
    incr executed;
    if !executed > budget then begin
      let name =
        if t.last_changed >= 0 then t.d.Elab.nets.(t.last_changed).Elab.name
        else "<unknown>"
      in
      raise (Comb_loop name)
    end;
    let p = t.progs.(u) in
    if Array.length p > 0 then exec t p
  done

let clear_overlay t =
  for i = 0 to t.n_touched - 1 do
    Bytes.set t.ov_set t.touched.(i) '\000'
  done;
  t.n_touched <- 0

let step t ~edge clock =
  settle t;
  Array.iter
    (fun (edges, code) ->
      if List.exists (fun (e, id) -> e = edge && id = clock) edges then begin
        clear_overlay t;
        exec t code
      end)
    t.seqp;
  clear_overlay t;
  for i = 0 to t.n_nba - 1 do
    let id = t.nba_id.(i) in
    if Bytes.get t.forced id = '\000' then begin
      let lo = t.nba_lo.(i) in
      let sm = t.nba_m.(i) lsl lo in
      let v = (t.nv.(id) land lnot sm) lor (t.nba_v.(i) lsl lo) in
      let u = (t.nu.(id) land lnot sm) lor (t.nba_u.(i) lsl lo) in
      if v <> t.nv.(id) || u <> t.nu.(id) then begin
        t.nv.(id) <- v;
        t.nu.(id) <- u;
        mark_readers t id
      end
    end
  done;
  t.n_nba <- 0;
  t.time <- t.time + 1;
  settle t

let get_id t id = Bv.of_planes ~width:t.widths.(id) t.nv.(id) t.nu.(id)

let planes_resized t id bv =
  match Bv.planes (Bv.resize bv t.widths.(id)) with
  | Some (v, u) -> (v, u)
  | None -> assert false

let poke_id t id bv =
  if Bytes.get t.forced id = '\000' then begin
    let v, u = planes_resized t id bv in
    if v <> t.nv.(id) || u <> t.nu.(id) then begin
      t.nv.(id) <- v;
      t.nu.(id) <- u;
      mark_readers t id
    end
  end

let set_id t id bv =
  poke_id t id bv;
  settle t

let force_id t id bv =
  let v, u = planes_resized t id bv in
  Bytes.set t.forced id '\001';
  t.nv.(id) <- v;
  t.nu.(id) <- u;
  mark_readers t id;
  settle t

let release_id t id =
  Bytes.set t.forced id '\000';
  enqueue t id;
  mark_readers t id;
  settle t

let forced_id t id = Bytes.get t.forced id = '\001'

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

(* Assembling the per-unit programs is the expensive, design-pure half
   of [create]; the mutable runtime state is cheap.  Splitting the two
   lets callers that run many simulations of the same design (replay
   shards one simulator per trace) assemble once and instantiate per
   run. *)
type prog = {
  pd : Elab.t;
  pu : units;
  pwidths : int array;
  pmasks : int array;
  pprogs : int array array;
  pseqp : ((Ast.edge * Elab.uid) list * int array) array;
  pmax_stack : int;
  pmax_temps : int;
}

let compile ?u ?facts (d : Elab.t) =
  (* Bytecode assembly is paid once per design (or per mutant in a
     campaign) — a span makes its share visible next to the per-trace
     replay spans in the profile. *)
  Avp_obs.Obs.span ~cat:"hdl" "hdl.compile"
    ~args:[ ("nets", Avp_obs.Obs.Int (Array.length d.Elab.nets)) ]
  @@ fun () ->
  let d, u =
    match facts with
    | None -> (d, (match u with Some u -> u | None -> units d))
    | Some fx ->
      (* The specialized processes have different reads, so a caller's
         pre-facts analysis cannot be reused. *)
      let d = specialize fx d in
      (d, units d)
  in
  let n = Array.length d.Elab.nets in
  let max_stack = ref 1 and max_temps = ref 1 in
  let finish a =
    out a op_halt;
    assert (a.depth = 0);
    if a.maxd > !max_stack then max_stack := a.maxd;
    if a.ntemps > !max_temps then max_temps := a.ntemps;
    Array.sub a.buf 0 a.len
  in
  match
    (* Every net must fit the packed representation, driven or not:
       poke/force/get go through the planes directly. *)
    Array.iter (fun net -> ignore (chkw net.Elab.width)) d.Elab.nets;
    let progs = Array.make u.unit_count [||] in
    for id = 0 to n - 1 do
      match u.drivers.(id) with
      | [] -> ()
      | dlist ->
        let a = new_asm d ~seq_ctx:false in
        emit_driver a id dlist;
        progs.(id) <- finish a
    done;
    Array.iteri
      (fun ci body ->
        let a = new_asm d ~seq_ctx:false in
        emit_stmt a body;
        progs.(n + ci) <- finish a)
      u.comb;
    let seqp =
      Array.map
        (fun (edges, body) ->
          let a = new_asm d ~seq_ctx:true in
          emit_stmt a body;
          (edges, finish a))
        u.seq
    in
    (progs, seqp)
  with
  | exception Unsupported -> None
  | exception Invalid_argument _ -> None
  | progs, seqp ->
    let widths = Array.map (fun net -> net.Elab.width) d.Elab.nets in
    Some
      {
        pd = d;
        pu = u;
        pwidths = widths;
        pmasks = Array.map msk widths;
        pprogs = progs;
        pseqp = seqp;
        pmax_stack = !max_stack;
        pmax_temps = !max_temps;
      }

let instantiate (p : prog) =
  let d = p.pd and u = p.pu in
  let n = Array.length d.Elab.nets in
  let nv =
    Array.init n (fun i ->
        match d.Elab.nets.(i).Elab.kind with
        | Ast.Reg -> p.pmasks.(i) (* all X *)
        | Ast.Wire -> 0 (* all Z *))
  in
  {
    d;
    u;
    widths = p.pwidths;
    nv;
    nu = Array.copy p.pmasks;
    forced = Bytes.make n '\000';
    progs = p.pprogs;
    seqp = p.pseqp;
    sv = Array.make (p.pmax_stack + 1) 0;
    su = Array.make (p.pmax_stack + 1) 0;
    tv = Array.make p.pmax_temps 0;
    tu = Array.make p.pmax_temps 0;
    ov_v = Array.make n 0;
    ov_u = Array.make n 0;
    ov_set = Bytes.make n '\000';
    touched = Array.make (max n 1) 0;
    n_touched = 0;
    nba_id = Array.make 16 0;
    nba_lo = Array.make 16 0;
    nba_m = Array.make 16 0;
    nba_v = Array.make 16 0;
    nba_u = Array.make 16 0;
    n_nba = 0;
    queue = Array.make (u.unit_count + 1) 0;
    qh = 0;
    qt = 0;
    in_queue = Bytes.make (max u.unit_count 1) '\000';
    dirty_all = true;
    time = 0;
    last_changed = -1;
  }

let create ?u ?facts (d : Elab.t) =
  Option.map instantiate (compile ?u ?facts d)
let prog_units p = p.pu
