open Avp_logic

exception Comb_loop = Compile.Comb_loop

(* Two engines behind one interface: the tree-walking interpreter
   (the original implementation, kept as the differential oracle) and
   the compiled bytecode kernel in {!Compile}.  Both consume the same
   {!Compile.units} analysis, so they run the same evaluation units
   in the same worklist order and agree bit-for-bit, including on
   which net a [Comb_loop] names. *)

type interp = {
  d : Elab.t;
  u : Compile.units;
  values : Bv.t array;
  forces : Bv.t option array;
  mutable time : int;
  in_queue : bool array;
  queue : int Queue.t;
  mutable dirty_all : bool;
  (* One overlay reused by every sequential process on every edge,
     rather than a fresh Hashtbl per process per edge. *)
  overlay : (Elab.uid, Bv.t) Hashtbl.t;
}

type eng = I of interp | C of Compile.t | S of Sliced.t

(* Observer hooks live at this dispatch layer, not inside the
   engines, so waveform dumpers and telemetry see the exact same
   callbacks whichever engine [create] selected. *)
type observer = {
  on_step : time:int -> unit;
  on_force : string -> Bv.t -> unit;
  on_release : string -> unit;
}

type t = { eng : eng; mutable obs : observer option }

let create_interp (d : Elab.t) (u : Compile.units) =
  let n = Array.length d.Elab.nets in
  let values =
    Array.init n (fun i ->
        let net = d.Elab.nets.(i) in
        match net.Elab.kind with
        | Ast.Reg -> Bv.all_x net.Elab.width
        | Ast.Wire -> Bv.all_z net.Elab.width)
  in
  {
    d;
    u;
    values;
    forces = Array.make n None;
    time = 0;
    in_queue = Array.make u.Compile.unit_count false;
    queue = Queue.create ();
    dirty_all = true;
    overlay = Hashtbl.create 16;
  }

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                              *)
(* ------------------------------------------------------------------ *)

let rec eval_with lookup (d : Elab.t) (e : Elab.eexpr) : Bv.t =
  match e with
  | Elab.Const v -> v
  | Elab.Net id -> lookup id
  | Elab.Index (id, idx) ->
    let v = lookup id in
    (match Bv.to_int (eval_with lookup d idx) with
     | Some i when i >= 0 && i < Bv.width v ->
       Bv.of_bits [ Bv.get v i ]
     | Some _ | None -> Bv.all_x 1)
  | Elab.Range (id, hi, lo) -> Bv.select (lookup id) ~hi ~lo
  | Elab.Unop (op, e) ->
    let v = eval_with lookup d e in
    (match op with
     | Ast.Not ->
       (match Bv.to_bool v with
        | Some b -> Bv.of_bits [ Bit.of_bool (not b) ]
        | None -> Bv.all_x 1)
     | Ast.Bnot -> Bv.lognot v
     | Ast.Uand -> Bv.of_bits [ Bv.reduce_and v ]
     | Ast.Uor -> Bv.of_bits [ Bv.reduce_or v ]
     | Ast.Uxor -> Bv.of_bits [ Bv.reduce_xor v ]
     | Ast.Neg -> Bv.neg v)
  | Elab.Binop (op, a, b) ->
    let va = eval_with lookup d a and vb = eval_with lookup d b in
    let logical f =
      match Bv.to_bool va, Bv.to_bool vb with
      | Some x, Some y -> Bv.of_bits [ Bit.of_bool (f x y) ]
      | _ -> Bv.all_x 1
    in
    (match op with
     | Ast.Add -> Bv.add va vb
     | Ast.Sub -> Bv.sub va vb
     | Ast.Mul -> Bv.mul va vb
     | Ast.Band -> Bv.logand va vb
     | Ast.Bor -> Bv.logor va vb
     | Ast.Bxor -> Bv.logxor va vb
     | Ast.Land -> logical ( && )
     | Ast.Lor -> logical ( || )
     | Ast.Eq -> Bv.of_bits [ Bv.eq va vb ]
     | Ast.Neq -> Bv.of_bits [ Bv.neq va vb ]
     | Ast.Ceq -> Bv.of_bits [ Bv.case_eq va vb ]
     | Ast.Cneq -> Bv.of_bits [ Bit.lognot (Bv.case_eq va vb) ]
     | Ast.Lt -> Bv.of_bits [ Bv.lt va vb ]
     | Ast.Le -> Bv.of_bits [ Bv.le va vb ]
     | Ast.Gt -> Bv.of_bits [ Bv.gt va vb ]
     | Ast.Ge -> Bv.of_bits [ Bv.ge va vb ]
     | Ast.Shl -> Bv.shift_left va vb
     | Ast.Shr -> Bv.shift_right va vb)
  | Elab.Ternary (c, a, b) ->
    (match Bv.to_bool (eval_with lookup d c) with
     | Some true -> eval_with lookup d a
     | Some false -> eval_with lookup d b
     | None ->
       let va = eval_with lookup d a and vb = eval_with lookup d b in
       Bv.mux ~sel:Bit.X va vb)
  | Elab.Concat es ->
    (match es with
     | [] -> invalid_arg "empty concat"
     | first :: rest ->
       List.fold_left
         (fun acc e -> Bv.concat acc (eval_with lookup d e))
         (eval_with lookup d first)
         rest)
  | Elab.Repeat (n, e) -> Bv.repeat n (eval_with lookup d e)

(* ------------------------------------------------------------------ *)
(* Lvalue writes                                                      *)
(* ------------------------------------------------------------------ *)

(* Split [value] across an lvalue, MSB-first, yielding per-net bit
   writes.  A dynamic index that evaluates to an undefined or
   out-of-range value produces no write, matching event-driven
   Verilog. *)
let lv_pieces lookup (d : Elab.t) (lv : Elab.elv) (value : Bv.t) :
    (Elab.uid * int * Bv.t) list =
  let rec lv_width = function
    | Elab.Lnet id -> d.Elab.nets.(id).Elab.width
    | Elab.Lindex _ -> 1
    | Elab.Lrange (_, hi, lo) -> hi - lo + 1
    | Elab.Lconcat ls -> List.fold_left (fun a l -> a + lv_width l) 0 ls
  in
  let total = lv_width lv in
  let value = Bv.resize value total in
  (* Walk components LSB-first: reverse order of the concat list. *)
  let pieces = ref [] in
  let rec walk lv offset =
    match lv with
    | Elab.Lnet id ->
      let w = d.Elab.nets.(id).Elab.width in
      pieces := (id, 0, Bv.select value ~hi:(offset + w - 1) ~lo:offset)
                :: !pieces;
      offset + w
    | Elab.Lindex (id, idx) ->
      (match Bv.to_int (eval_with lookup d idx) with
       | Some i when i >= 0 && i < d.Elab.nets.(id).Elab.width ->
         pieces := (id, i, Bv.select value ~hi:offset ~lo:offset) :: !pieces
       | Some _ | None -> ());
      offset + 1
    | Elab.Lrange (id, hi, lo) ->
      let w = hi - lo + 1 in
      pieces := (id, lo, Bv.select value ~hi:(offset + w - 1) ~lo:offset)
                :: !pieces;
      offset + w
    | Elab.Lconcat ls ->
      List.fold_left (fun off l -> walk l off) offset (List.rev ls)
  in
  ignore (walk lv 0);
  List.rev !pieces

let apply_piece current (lo, bits) = Bv.insert current ~lo bits

(* ------------------------------------------------------------------ *)
(* Statement execution                                                *)
(* ------------------------------------------------------------------ *)

type exec_ctx = {
  lookup : Elab.uid -> Bv.t;
  write_blocking : Elab.uid -> int -> Bv.t -> unit;
  write_nonblocking : Elab.uid -> int -> Bv.t -> unit;
}

let rec exec ctx (d : Elab.t) (s : Elab.estmt) : unit =
  match s with
  | Elab.Block ss -> List.iter (exec ctx d) ss
  | Elab.Nop -> ()
  | Elab.Blocking (lv, e) ->
    let v = eval_with ctx.lookup d e in
    List.iter
      (fun (id, lo, bits) -> ctx.write_blocking id lo bits)
      (lv_pieces ctx.lookup d lv v)
  | Elab.Nonblocking (lv, e) ->
    let v = eval_with ctx.lookup d e in
    List.iter
      (fun (id, lo, bits) -> ctx.write_nonblocking id lo bits)
      (lv_pieces ctx.lookup d lv v)
  | Elab.If (c, t, e) ->
    (match Bv.to_bool (eval_with ctx.lookup d c) with
     | Some true -> exec ctx d t
     | Some false | None ->
       (match e with Some s -> exec ctx d s | None -> ()))
  | Elab.Case (sel, items, dflt) ->
    let vsel = eval_with ctx.lookup d sel in
    let matches label =
      Bit.equal (Bv.case_eq vsel (eval_with ctx.lookup d label)) Bit.L1
    in
    let rec pick = function
      | [] -> (match dflt with Some s -> exec ctx d s | None -> ())
      | (labels, body) :: rest ->
        if List.exists matches labels then exec ctx d body else pick rest
    in
    pick items

(* ------------------------------------------------------------------ *)
(* Settling (interpreter)                                             *)
(* ------------------------------------------------------------------ *)

let write_value t id v =
  match t.forces.(id) with
  | Some _ -> false
  | None ->
    if Bv.equal t.values.(id) v then false
    else begin
      t.values.(id) <- v;
      true
    end

(* Worklist settling: only re-evaluate units whose inputs changed. *)

let enqueue_unit t u =
  if not t.in_queue.(u) then begin
    t.in_queue.(u) <- true;
    Queue.add u t.queue
  end

let mark_net_changed t net =
  Array.iter (enqueue_unit t) t.u.Compile.readers.(net)

let run_unit t u ~note_change =
  let n = Array.length t.d.Elab.nets in
  let lookup id = t.values.(id) in
  if u < n then begin
    (* Net resolution unit. *)
    match t.u.Compile.drivers.(u) with
    | [] -> ()
    | dlist ->
      let width = t.d.Elab.nets.(u).Elab.width in
      let contribution (lv, e) =
        let v = eval_with lookup t.d e in
        let base = Bv.all_z width in
        List.fold_left
          (fun acc (pid, lo, bits) ->
            if pid = u then apply_piece acc (lo, bits) else acc)
          base
          (lv_pieces lookup t.d lv v)
      in
      let resolved =
        List.fold_left
          (fun acc drv -> Bv.resolve acc (contribution drv))
          (Bv.all_z width) dlist
      in
      if write_value t u resolved then note_change u
  end
  else begin
    let ctx =
      {
        lookup;
        write_blocking =
          (fun id lo bits ->
            let v = apply_piece t.values.(id) (lo, bits) in
            if write_value t id v then note_change id);
        write_nonblocking =
          (fun id lo bits ->
            (* Nonblocking in combinational context degenerates to
               blocking under fixpoint iteration. *)
            let v = apply_piece t.values.(id) (lo, bits) in
            if write_value t id v then note_change id);
      }
    in
    exec ctx t.d t.u.Compile.comb.(u - n)
  end

let settle_i t =
  if t.dirty_all then begin
    t.dirty_all <- false;
    for u = 0 to t.u.Compile.unit_count - 1 do
      enqueue_unit t u
    done
  end;
  let budget = 64 * (t.u.Compile.unit_count + 4) in
  let executed = ref 0 in
  let last_changed = ref None in
  let note_change net =
    last_changed := Some t.d.Elab.nets.(net).Elab.name;
    mark_net_changed t net
  in
  while not (Queue.is_empty t.queue) do
    let u = Queue.pop t.queue in
    t.in_queue.(u) <- false;
    incr executed;
    if !executed > budget then begin
      let name =
        match !last_changed with Some n -> n | None -> "<unknown>"
      in
      raise (Comb_loop name)
    end;
    run_unit t u ~note_change
  done

(* ------------------------------------------------------------------ *)
(* Clock edges (interpreter)                                          *)
(* ------------------------------------------------------------------ *)

let step_i ~edge t clock_id =
  settle_i t;
  (* Blocking writes of sequential processes only reach the per-
     process overlay and nonblocking updates commit after every
     process has run, so [t.values] is the pre-edge state throughout:
     no snapshot copy of the net table is needed. *)
  let nba = ref [] in
  Array.iter
    (fun (edges, body) ->
      if List.exists (fun (e, id) -> e = edge && id = clock_id) edges then begin
        (* Each process reads pre-edge values plus its own blocking
           writes, so concurrent processes cannot race. *)
        Hashtbl.reset t.overlay;
        let lookup id =
          match Hashtbl.find_opt t.overlay id with
          | Some v -> v
          | None -> t.values.(id)
        in
        let ctx =
          {
            lookup;
            write_blocking =
              (fun id lo bits ->
                Hashtbl.replace t.overlay id
                  (apply_piece (lookup id) (lo, bits)));
            write_nonblocking =
              (fun id lo bits -> nba := (id, lo, bits) :: !nba);
          }
        in
        exec ctx t.d body
      end)
    t.u.Compile.seq;
  List.iter
    (fun (id, lo, bits) ->
      match t.forces.(id) with
      | Some _ -> ()
      | None ->
        let v = apply_piece t.values.(id) (lo, bits) in
        if not (Bv.equal t.values.(id) v) then begin
          t.values.(id) <- v;
          mark_net_changed t id
        end)
    (List.rev !nba);
  t.time <- t.time + 1;
  settle_i t

let poke_id_i t id v =
  match t.forces.(id) with
  | Some _ -> ()
  | None ->
    let v = Bv.resize v t.d.Elab.nets.(id).Elab.width in
    if not (Bv.equal t.values.(id) v) then begin
      t.values.(id) <- v;
      mark_net_changed t id
    end

(* ------------------------------------------------------------------ *)
(* Public interface: engine dispatch                                  *)
(* ------------------------------------------------------------------ *)

let create ?(engine = `Auto) (d : Elab.t) =
  let u = Compile.units d in
  let want_compiled =
    match engine with
    | `Compiled | `Sliced -> true
    | `Interp -> false
    | `Auto ->
      (match Sys.getenv_opt "AVP_SIM_ENGINE" with
       | Some "interp" -> false
       | Some _ | None -> true)
  in
  let eng =
    match engine with
    | `Sliced -> (
      (* One-lane batched kernel; falls back like [`Auto] when the
         design is outside the sliced engine's coverage. *)
      match Sliced.create ~u ~lanes:1 d with
      | Some s -> S s
      | None -> (
        match Compile.create ~u d with
        | Some c -> C c
        | None -> I (create_interp d u)))
    | _ ->
      if want_compiled then
        match Compile.create ~u d with
        | Some c -> C c
        | None -> I (create_interp d u)
      else I (create_interp d u)
  in
  { eng; obs = None }

(* Compile-once/instantiate-many: callers that simulate the same
   design hundreds of times (one simulator per replay trace) pay
   elaboration analysis and bytecode assembly once. *)
type template = { td : Elab.t; tu : Compile.units; tp : Compile.prog option }

let template ?(engine = `Auto) (d : Elab.t) =
  let u = Compile.units d in
  let want_compiled =
    match engine with
    | `Compiled -> true
    | `Interp -> false
    | `Auto ->
      (match Sys.getenv_opt "AVP_SIM_ENGINE" with
       | Some "interp" -> false
       | Some _ | None -> true)
  in
  { td = d; tu = u; tp = (if want_compiled then Compile.compile ~u d else None) }

let instantiate tpl =
  let eng =
    match tpl.tp with
    | Some p -> C (Compile.instantiate p)
    | None -> I (create_interp tpl.td tpl.tu)
  in
  { eng; obs = None }

let template_design tpl = tpl.td

let engine t =
  match t.eng with I _ -> `Interp | C _ -> `Compiled | S _ -> `Sliced

let design t =
  match t.eng with
  | I s -> s.d
  | C c -> Compile.design c
  | S s -> Sliced.design s

let time t =
  match t.eng with
  | I s -> s.time
  | C c -> Compile.time c
  | S s -> Sliced.time s
let set_observer t obs = t.obs <- obs
let observer t = t.obs

let lookup_id t name =
  match Hashtbl.find_opt (design t).Elab.by_name name with
  | Some id -> id
  | None -> raise Not_found

let get_id t id =
  match t.eng with
  | I s -> s.values.(id)
  | C c -> Compile.get_id c id
  | S s -> Sliced.get_lane s ~lane:0 id

let get t name = get_id t (lookup_id t name)

let eval t e =
  match t.eng with
  | I s -> eval_with (fun id -> s.values.(id)) s.d e
  | C c -> eval_with (Compile.get_id c) (Compile.design c) e
  | S s -> eval_with (Sliced.get_lane s ~lane:0) (Sliced.design s) e

let settle t =
  match t.eng with
  | I s -> settle_i s
  | C c -> Compile.settle c
  | S s -> Sliced.settle s

let poke_id t id v =
  match t.eng with
  | I s -> poke_id_i s id v
  | C c -> Compile.poke_id c id v
  | S s -> Sliced.poke_id s id v

let set t name v =
  let id = lookup_id t name in
  poke_id t id v;
  settle t

let force t name v =
  let id = lookup_id t name in
  (match t.eng with
   | I s ->
     let width = s.d.Elab.nets.(id).Elab.width in
     s.forces.(id) <- Some (Bv.resize v width);
     s.values.(id) <- Bv.resize v width;
     mark_net_changed s id;
     settle_i s
   | C c -> Compile.force_id c id v
   | S sl ->
     Sliced.force_id sl id v;
     Sliced.settle sl);
  match t.obs with Some o -> o.on_force name v | None -> ()

let release t name =
  let id = lookup_id t name in
  (match t.eng with
   | I s ->
     s.forces.(id) <- None;
     (* Re-resolve the net itself and everything reading it. *)
     enqueue_unit s id;
     mark_net_changed s id;
     settle_i s
   | C c -> Compile.release_id c id
   | S sl ->
     Sliced.release_id sl id;
     Sliced.settle sl);
  match t.obs with Some o -> o.on_release name | None -> ()

let forced t name =
  let id = lookup_id t name in
  match t.eng with
  | I s -> s.forces.(id) <> None
  | C c -> Compile.forced_id c id
  | S sl -> Sliced.forced_mask sl id <> 0

let step ?(edge = Ast.Posedge) t clock =
  let clock_id = lookup_id t clock in
  (match t.eng with
   | I s -> step_i ~edge s clock_id
   | C c -> Compile.step c ~edge clock_id
   | S sl -> Sliced.step ~edge sl clock_id);
  (* The sliced kernel counts its own steps (and lanes). *)
  (match t.eng with
   | S _ -> ()
   | _ -> if Avp_obs.Obs.enabled () then Avp_obs.Obs.incr "sim.steps");
  match t.obs with Some o -> o.on_step ~time:(time t) | None -> ()
