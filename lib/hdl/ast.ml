type loc = { line : int; col : int }

let pp_loc ppf { line; col } = Format.fprintf ppf "%d:%d" line col
let no_loc = { line = 0; col = 0 }

type unop = Not | Bnot | Uand | Uor | Uxor | Neg

type binop =
  | Add | Sub | Mul
  | Band | Bor | Bxor
  | Land | Lor
  | Eq | Neq | Ceq | Cneq
  | Lt | Le | Gt | Ge
  | Shl | Shr

type expr =
  | Literal of Avp_logic.Bv.t
  | Ident of string
  | Index of string * expr
  | Range of string * int * int
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Ternary of expr * expr * expr
  | Concat of expr list
  | Repeat of int * expr

type lvalue =
  | Lident of string
  | Lindex of string * expr
  | Lrange of string * int * int
  | Lconcat of lvalue list

type stmt =
  | Block of stmt list
  | Blocking of lvalue * expr * loc
  | Nonblocking of lvalue * expr * loc
  | If of expr * stmt * stmt option
  | Case of expr * (expr list * stmt) list * stmt option
  | Nop

type edge = Posedge | Negedge

type sensitivity = Comb | Edges of (edge * string) list

type net_kind = Wire | Reg

type range = { msb : int; lsb : int }

let range_width = function
  | None -> 1
  | Some { msb; lsb } -> abs (msb - lsb) + 1

type direction = Input | Output | Inout

type decl = {
  d_kind : net_kind;
  d_range : range option;
  d_names : string list;
  d_attrs : string list;
  d_loc : loc;
}

type item =
  | Port_decl of direction * range option * string list * loc
  | Net_decl of decl
  | Assign of lvalue * expr * loc
  | Always of sensitivity * stmt * loc
  | Instance of {
      i_module : string;
      i_name : string;
      i_conns : (string option * expr) list;
      i_loc : loc;
    }
  | Directive of string * loc
  | Initial of stmt * loc

type module_decl = {
  m_name : string;
  m_ports : string list;
  m_items : item list;
  m_loc : loc;
}

type design = module_decl list

let unop_str = function
  | Not -> "!" | Bnot -> "~" | Uand -> "&" | Uor -> "|" | Uxor -> "^"
  | Neg -> "-"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*"
  | Band -> "&" | Bor -> "|" | Bxor -> "^"
  | Land -> "&&" | Lor -> "||"
  | Eq -> "==" | Neq -> "!=" | Ceq -> "===" | Cneq -> "!=="
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | Shl -> "<<" | Shr -> ">>"

let rec pp_expr ppf = function
  | Literal v ->
    Format.fprintf ppf "%d'b%s" (Avp_logic.Bv.width v)
      (Avp_logic.Bv.to_string v)
  | Ident s -> Format.pp_print_string ppf s
  | Index (s, e) -> Format.fprintf ppf "%s[%a]" s pp_expr e
  | Range (s, hi, lo) -> Format.fprintf ppf "%s[%d:%d]" s hi lo
  | Unop (op, e) -> Format.fprintf ppf "(%s%a)" (unop_str op) pp_expr e
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Ternary (c, a, b) ->
    Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Concat es ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_expr)
      es
  | Repeat (n, e) -> Format.fprintf ppf "{%d{%a}}" n pp_expr e

let rec pp_lvalue ppf = function
  | Lident s -> Format.pp_print_string ppf s
  | Lindex (s, e) -> Format.fprintf ppf "%s[%a]" s pp_expr e
  | Lrange (s, hi, lo) -> Format.fprintf ppf "%s[%d:%d]" s hi lo
  | Lconcat ls ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_lvalue)
      ls

let rec pp_stmt ppf = function
  | Block stmts ->
    Format.fprintf ppf "@[<v 2>begin@,%a@]@,end"
      (Format.pp_print_list pp_stmt) stmts
  | Blocking (l, e, _) -> Format.fprintf ppf "%a = %a;" pp_lvalue l pp_expr e
  | Nonblocking (l, e, _) ->
    Format.fprintf ppf "%a <= %a;" pp_lvalue l pp_expr e
  | If (c, t, None) ->
    Format.fprintf ppf "@[<v 2>if (%a)@,%a@]" pp_expr c pp_stmt t
  | If (c, t, Some e) ->
    Format.fprintf ppf "@[<v 2>if (%a)@,%a@]@,@[<v 2>else@,%a@]" pp_expr c
      pp_stmt t pp_stmt e
  | Case (sel, items, dflt) ->
    let pp_item ppf (labels, body) =
      Format.fprintf ppf "@[<v 2>%a:@,%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        labels pp_stmt body
    in
    Format.fprintf ppf "@[<v 2>case (%a)@,%a" pp_expr sel
      (Format.pp_print_list pp_item) items;
    (match dflt with
     | None -> ()
     | Some d -> Format.fprintf ppf "@,@[<v 2>default:@,%a@]" pp_stmt d);
    Format.fprintf ppf "@]@,endcase"
  | Nop -> Format.pp_print_string ppf ";"

let pp_range ppf = function
  | None -> ()
  | Some { msb; lsb } -> Format.fprintf ppf "[%d:%d] " msb lsb

let pp_names ppf names =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Format.pp_print_string ppf names

let pp_item ppf = function
  | Port_decl (dir, r, names, _) ->
    let d =
      match dir with Input -> "input" | Output -> "output" | Inout -> "inout"
    in
    Format.fprintf ppf "%s %a%a;" d pp_range r pp_names names
  | Net_decl { d_kind; d_range; d_names; d_attrs; _ } ->
    let k = match d_kind with Wire -> "wire" | Reg -> "reg" in
    Format.fprintf ppf "%s %a%a;" k pp_range d_range pp_names d_names;
    List.iter (fun a -> Format.fprintf ppf " // avp %s" a) d_attrs
  | Assign (l, e, _) ->
    Format.fprintf ppf "assign %a = %a;" pp_lvalue l pp_expr e
  | Always (sens, body, _) ->
    let pp_sens ppf = function
      | Comb -> Format.pp_print_string ppf "@(*)"
      | Edges es ->
        let pp_edge ppf (e, s) =
          Format.fprintf ppf "%s %s"
            (match e with Posedge -> "posedge" | Negedge -> "negedge")
            s
        in
        Format.fprintf ppf "@(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " or ")
             pp_edge)
          es
    in
    Format.fprintf ppf "@[<v 2>always %a@,%a@]" pp_sens sens pp_stmt body
  | Instance { i_module; i_name; i_conns; _ } ->
    let pp_conn ppf = function
      | Some p, e -> Format.fprintf ppf ".%s(%a)" p pp_expr e
      | None, e -> pp_expr ppf e
    in
    Format.fprintf ppf "%s %s (%a);" i_module i_name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_conn)
      i_conns
  | Directive (s, _) -> Format.fprintf ppf "// avp %s" s
  | Initial (body, _) ->
    Format.fprintf ppf "@[<v 2>initial@,%a@]" pp_stmt body

let pp_module ppf m =
  Format.fprintf ppf "@[<v 2>module %s (%a);@,%a@]@,endmodule" m.m_name
    pp_names m.m_ports
    (Format.pp_print_list pp_item)
    m.m_items

let pp_design ppf d =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
    pp_module ppf d

let find_module design name =
  List.find_opt (fun m -> String.equal m.m_name name) design

let equal_design (a : design) (b : design) = a = b

let dedup names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let rec expr_idents_acc acc = function
  | Literal _ -> acc
  | Ident s -> s :: acc
  | Index (s, e) -> expr_idents_acc (s :: acc) e
  | Range (s, _, _) -> s :: acc
  | Unop (_, e) -> expr_idents_acc acc e
  | Binop (_, a, b) -> expr_idents_acc (expr_idents_acc acc a) b
  | Ternary (c, a, b) ->
    expr_idents_acc (expr_idents_acc (expr_idents_acc acc c) a) b
  | Concat es -> List.fold_left expr_idents_acc acc es
  | Repeat (_, e) -> expr_idents_acc acc e

let expr_idents e = dedup (List.rev (expr_idents_acc [] e))

let rec lvalue_targets = function
  | Lident s -> [ s ]
  | Lindex (s, _) -> [ s ]
  | Lrange (s, _, _) -> [ s ]
  | Lconcat ls -> dedup (List.concat_map lvalue_targets ls)

let rec lvalue_reads_acc acc = function
  | Lident _ -> acc
  | Lindex (_, e) -> expr_idents_acc acc e
  | Lrange (_, _, _) -> acc
  | Lconcat ls -> List.fold_left lvalue_reads_acc acc ls

let rec stmt_reads_acc acc = function
  | Block stmts -> List.fold_left stmt_reads_acc acc stmts
  | Blocking (l, e, _) | Nonblocking (l, e, _) ->
    expr_idents_acc (lvalue_reads_acc acc l) e
  | If (c, t, e) ->
    let acc = expr_idents_acc acc c in
    let acc = stmt_reads_acc acc t in
    (match e with None -> acc | Some s -> stmt_reads_acc acc s)
  | Case (sel, items, dflt) ->
    let acc = expr_idents_acc acc sel in
    let acc =
      List.fold_left
        (fun acc (labels, body) ->
          stmt_reads_acc (List.fold_left expr_idents_acc acc labels) body)
        acc items
    in
    (match dflt with None -> acc | Some s -> stmt_reads_acc acc s)
  | Nop -> acc

let stmt_reads s = dedup (List.rev (stmt_reads_acc [] s))

let rec stmt_writes_acc acc = function
  | Block stmts -> List.fold_left stmt_writes_acc acc stmts
  | Blocking (l, _, _) | Nonblocking (l, _, _) ->
    List.rev_append (lvalue_targets l) acc
  | If (_, t, e) ->
    let acc = stmt_writes_acc acc t in
    (match e with None -> acc | Some s -> stmt_writes_acc acc s)
  | Case (_, items, dflt) ->
    let acc =
      List.fold_left (fun acc (_, body) -> stmt_writes_acc acc body) acc items
    in
    (match dflt with None -> acc | Some s -> stmt_writes_acc acc s)
  | Nop -> acc

let stmt_writes s = dedup (List.rev (stmt_writes_acc [] s))
