type severity = Warning | Error

type finding = {
  severity : severity;
  rule : string;
  net : string option;
  message : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s: [%s]%s %s"
    (match f.severity with Warning -> "warning" | Error -> "error")
    f.rule
    (match f.net with Some n -> " " ^ n | None -> "")
    f.message

(* Syntactic "this driver can release the bus": the expression can
   evaluate to all-z on some input.  A tri-state driver is written
   [en ? data : 'bz]; a net whose every continuous driver has this
   shape is a deliberate tri-state bus, not a conflict. *)
let rec can_float (e : Elab.eexpr) =
  match e with
  | Elab.Const v ->
    let s = Avp_logic.Bv.to_string v in
    s <> "" && String.for_all (fun c -> c = 'z') s
  | Elab.Ternary (_, a, b) -> can_float a || can_float b
  | Elab.Concat es -> es <> [] && List.for_all can_float es
  | Elab.Repeat (_, e) -> can_float e
  | _ -> false

(* Per-net facts gathered over the design. *)
type facts = {
  mutable assign_drivers : int;
  mutable hard_assign_drivers : int;
      (* continuous drivers that can never release the bus *)
  mutable comb_writes : int;
  mutable seq_writes : int;
  mutable blocking_writes : int;
  mutable nonblocking_writes : int;
  mutable reads : int;
  mutable is_edge_trigger : bool;  (* appears in a sensitivity list *)
}

let fresh () =
  {
    assign_drivers = 0;
    hard_assign_drivers = 0;
    comb_writes = 0;
    seq_writes = 0;
    blocking_writes = 0;
    nonblocking_writes = 0;
    reads = 0;
    is_edge_trigger = false;
  }

let rec stmt_assign_kinds (s : Elab.estmt) ~on_blocking ~on_nonblocking =
  match s with
  | Elab.Block ss ->
    List.iter (stmt_assign_kinds ~on_blocking ~on_nonblocking) ss
  | Elab.Blocking (lv, _) -> List.iter on_blocking (Elab.lv_nets lv)
  | Elab.Nonblocking (lv, _) -> List.iter on_nonblocking (Elab.lv_nets lv)
  | Elab.If (_, t, e) ->
    stmt_assign_kinds t ~on_blocking ~on_nonblocking;
    Option.iter (stmt_assign_kinds ~on_blocking ~on_nonblocking) e
  | Elab.Case (_, items, dflt) ->
    List.iter
      (fun (_, body) -> stmt_assign_kinds body ~on_blocking ~on_nonblocking)
      items;
    Option.iter (stmt_assign_kinds ~on_blocking ~on_nonblocking) dflt
  | Elab.Nop -> ()

let check (d : Elab.t) : finding list =
  let n = Array.length d.Elab.nets in
  let facts = Array.init n (fun _ -> fresh ()) in
  Array.iter
    (fun p ->
      (match p with
       | Elab.Assign (lv, e) ->
         let hard = if can_float e then 0 else 1 in
         List.iter
           (fun id ->
             facts.(id).assign_drivers <- facts.(id).assign_drivers + 1;
             facts.(id).hard_assign_drivers <-
               facts.(id).hard_assign_drivers + hard)
           (Elab.lv_nets lv)
       | Elab.Comb body ->
         List.iter
           (fun id -> facts.(id).comb_writes <- facts.(id).comb_writes + 1)
           (Elab.stmt_writes body)
       | Elab.Seq (edges, body) ->
         List.iter
           (fun (_, id) -> facts.(id).is_edge_trigger <- true)
           edges;
         List.iter
           (fun id -> facts.(id).seq_writes <- facts.(id).seq_writes + 1)
           (Elab.stmt_writes body));
      (match p with
       | Elab.Comb body | Elab.Seq (_, body) ->
         stmt_assign_kinds body
           ~on_blocking:(fun id ->
             facts.(id).blocking_writes <- facts.(id).blocking_writes + 1)
           ~on_nonblocking:(fun id ->
             facts.(id).nonblocking_writes <-
               facts.(id).nonblocking_writes + 1)
       | Elab.Assign _ -> ());
      let reads =
        match p with
        | Elab.Assign (lv, e) ->
          Elab.expr_nets e
          @ (let rec idx acc = function
               | Elab.Lnet _ | Elab.Lrange _ -> acc
               | Elab.Lindex (_, e) -> Elab.expr_nets e @ acc
               | Elab.Lconcat ls -> List.fold_left idx acc ls
             in
             idx [] lv)
        | Elab.Comb body | Elab.Seq (_, body) -> Elab.stmt_reads body
      in
      List.iter (fun id -> facts.(id).reads <- facts.(id).reads + 1) reads)
    d.Elab.processes;
  let out = ref [] in
  Array.iteri
    (fun id f ->
      let add severity rule net message =
        out := (id, { severity; rule; net = Some net; message }) :: !out
      in
      let net = d.Elab.nets.(id) in
      let name = net.Elab.name in
      let is_input = d.Elab.top_inputs.(id) in
      let written =
        f.assign_drivers + f.comb_writes + f.seq_writes > 0 || is_input
      in
      if f.assign_drivers > 0 && f.comb_writes + f.seq_writes > 0 then
        add Error "multiple-drivers" name
          "driven by both a continuous assignment and a process"
      else if f.assign_drivers > 1 && f.hard_assign_drivers > 0 then
        (* All-tri-state driver sets are a deliberate bus and stay
           silent; one driver that can never release makes the bus
           contended. *)
        add Warning "multiple-drivers" name
          (Printf.sprintf
             "%d continuous drivers and %d can never release the bus"
             f.assign_drivers f.hard_assign_drivers);
      if f.seq_writes > 0 && f.comb_writes > 0 then
        add Error "seq-and-comb" name
          "written by both sequential and combinational processes";
      if f.blocking_writes > 0 && f.nonblocking_writes > 0 then
        add Error "mixed-assignment" name
          "written by both blocking and nonblocking assignments";
      (match net.Elab.kind with
       | Ast.Reg when not written && not f.is_edge_trigger ->
         if f.reads > 0 then
           add Error "reg-never-written" name "register is read but never \
                                               assigned"
         else add Warning "unused-net" name "declared but never used"
       | Ast.Wire
         when (not is_input) && f.assign_drivers = 0 && f.reads > 0
              && (not f.is_edge_trigger)
              && f.comb_writes + f.seq_writes = 0 ->
         add Warning "wire-never-driven" name
           "read but never driven (will float at z)"
       | Ast.Reg | Ast.Wire ->
         if (not written) && f.reads = 0 && not f.is_edge_trigger then
           add Warning "unused-net" name "declared but never used"))
    facts;
  (* Deterministic, byte-stable order: (severity, rule, net id,
     message) — never dependent on traversal or hash order. *)
  List.sort
    (fun (ia, a) (ib, b) ->
      let sev f = match f.severity with Error -> 0 | Warning -> 1 in
      let c = compare (sev a) (sev b) in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c
        else
          let c = Int.compare ia ib in
          if c <> 0 then c else String.compare a.message b.message)
    (List.rev !out)
  |> List.map snd
