type uid = int

type enet = {
  id : uid;
  name : string;
  width : int;
  kind : Ast.net_kind;
  attrs : string list;
  loc : Ast.loc;
}

type eexpr =
  | Const of Avp_logic.Bv.t
  | Net of uid
  | Index of uid * eexpr
  | Range of uid * int * int
  | Unop of Ast.unop * eexpr
  | Binop of Ast.binop * eexpr * eexpr
  | Ternary of eexpr * eexpr * eexpr
  | Concat of eexpr list
  | Repeat of int * eexpr

type elv =
  | Lnet of uid
  | Lindex of uid * eexpr
  | Lrange of uid * int * int
  | Lconcat of elv list

type estmt =
  | Block of estmt list
  | Blocking of elv * eexpr
  | Nonblocking of elv * eexpr
  | If of eexpr * estmt * estmt option
  | Case of eexpr * (eexpr list * estmt) list * estmt option
  | Nop

type process =
  | Assign of elv * eexpr
  | Comb of estmt
  | Seq of (Ast.edge * uid) list * estmt

type t = {
  nets : enet array;
  processes : process array;
  control : bool array;  (* parallel to [processes] *)
  by_name : (string, uid) Hashtbl.t;
  top : string;
  directives : string list;
  top_inputs : bool array;  (* net id -> top-level input/inout port *)
  process_locs : Ast.loc array;  (* parallel to [processes] *)
  write_sites : (uid * bool * Ast.loc) list array;
      (* parallel to [processes]: (net, nonblocking?, assignment
         position) for every static assignment site, in source order *)
}

exception Error of string

let fail fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Builder state                                                      *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable b_nets : enet list;  (* reverse order *)
  mutable b_count : int;
  b_by_name : (string, uid) Hashtbl.t;
  mutable b_processes :
    (process * bool * Ast.loc * (uid * bool * Ast.loc) list) list;
      (* with control flag, source position and write sites *)
  mutable b_directives : string list;  (* reverse order *)
  mutable b_in_control : bool;
}

let new_net b ~name ~width ~kind ~attrs ~loc =
  if Hashtbl.mem b.b_by_name name then
    fail "duplicate net declaration: %s" name;
  let n = { id = b.b_count; name; width; kind; attrs; loc } in
  b.b_nets <- n :: b.b_nets;
  b.b_count <- b.b_count + 1;
  Hashtbl.add b.b_by_name name n.id;
  n

let add_process b ~loc ?(sites = []) p =
  b.b_processes <- (p, b.b_in_control, loc, sites) :: b.b_processes

(* Per-instance scope: local net name -> (uid, declared lsb, width). *)
type scope = {
  prefix : string;
  table : (string, uid * int * int) Hashtbl.t;
}

let scope_lookup scope name =
  match Hashtbl.find_opt scope.table name with
  | Some entry -> entry
  | None -> fail "unknown identifier %s in scope %s" name scope.prefix

(* ------------------------------------------------------------------ *)
(* Expression and statement resolution                                *)
(* ------------------------------------------------------------------ *)

let rec resolve_expr scope (e : Ast.expr) : eexpr =
  match e with
  | Ast.Literal v -> Const v
  | Ast.Ident name ->
    let id, _, _ = scope_lookup scope name in
    Net id
  | Ast.Index (name, idx) ->
    let id, lsb, _ = scope_lookup scope name in
    let idx = resolve_expr scope idx in
    let idx =
      if lsb = 0 then idx
      else
        Binop
          (Ast.Sub, idx, Const (Avp_logic.Bv.of_int ~width:32 lsb))
    in
    Index (id, idx)
  | Ast.Range (name, hi, lo) ->
    let id, lsb, width = scope_lookup scope name in
    let hi = hi - lsb and lo = lo - lsb in
    if lo < 0 || hi < lo || hi >= width then
      fail "range [%d:%d] out of bounds for %s" hi lo name;
    Range (id, hi, lo)
  | Ast.Unop (op, e) -> Unop (op, resolve_expr scope e)
  | Ast.Binop (op, a, b) ->
    Binop (op, resolve_expr scope a, resolve_expr scope b)
  | Ast.Ternary (c, a, b) ->
    Ternary (resolve_expr scope c, resolve_expr scope a, resolve_expr scope b)
  | Ast.Concat es -> Concat (List.map (resolve_expr scope) es)
  | Ast.Repeat (n, e) -> Repeat (n, resolve_expr scope e)

let rec resolve_lv scope (lv : Ast.lvalue) : elv =
  match lv with
  | Ast.Lident name ->
    let id, _, _ = scope_lookup scope name in
    Lnet id
  | Ast.Lindex (name, idx) ->
    let id, lsb, _ = scope_lookup scope name in
    let idx = resolve_expr scope idx in
    let idx =
      if lsb = 0 then idx
      else Binop (Ast.Sub, idx, Const (Avp_logic.Bv.of_int ~width:32 lsb))
    in
    Lindex (id, idx)
  | Ast.Lrange (name, hi, lo) ->
    let id, lsb, width = scope_lookup scope name in
    let hi = hi - lsb and lo = lo - lsb in
    if lo < 0 || hi < lo || hi >= width then
      fail "range [%d:%d] out of bounds for %s" hi lo name;
    Lrange (id, hi, lo)
  | Ast.Lconcat ls -> Lconcat (List.map (resolve_lv scope) ls)

let rec resolve_stmt scope (s : Ast.stmt) : estmt =
  match s with
  | Ast.Block ss -> Block (List.map (resolve_stmt scope) ss)
  | Ast.Blocking (lv, e, _) ->
    Blocking (resolve_lv scope lv, resolve_expr scope e)
  | Ast.Nonblocking (lv, e, _) ->
    Nonblocking (resolve_lv scope lv, resolve_expr scope e)
  | Ast.If (c, t, e) ->
    If
      ( resolve_expr scope c,
        resolve_stmt scope t,
        Option.map (resolve_stmt scope) e )
  | Ast.Case (sel, items, dflt) ->
    Case
      ( resolve_expr scope sel,
        List.map
          (fun (labels, body) ->
            (List.map (resolve_expr scope) labels, resolve_stmt scope body))
          items,
        Option.map (resolve_stmt scope) dflt )
  | Ast.Nop -> Nop

(* ------------------------------------------------------------------ *)
(* Module instantiation                                               *)
(* ------------------------------------------------------------------ *)

(* Static assignment sites of an Ast statement: which nets the
   process can write, blocking or nonblocking, and where each
   assignment sits in the source.  [resolve_stmt] drops the per-stmt
   positions; this keeps them for diagnostics (the scheduling-race
   pass reports both colliding sites). *)
let ast_lv_names (lv : Ast.lvalue) =
  let rec go acc = function
    | Ast.Lident n | Ast.Lindex (n, _) | Ast.Lrange (n, _, _) -> n :: acc
    | Ast.Lconcat ls -> List.fold_left go acc ls
  in
  List.rev (go [] lv)

let elv_write_nets (lv : elv) =
  let rec go acc = function
    | Lnet id | Lindex (id, _) | Lrange (id, _, _) -> id :: acc
    | Lconcat ls -> List.fold_left go acc ls
  in
  List.rev (go [] lv)

let stmt_sites scope (s : Ast.stmt) : (uid * bool * Ast.loc) list =
  let rec go acc = function
    | Ast.Block ss -> List.fold_left go acc ss
    | Ast.Blocking (lv, _, loc) ->
      List.fold_left
        (fun acc n ->
          let id, _, _ = scope_lookup scope n in
          (id, false, loc) :: acc)
        acc (ast_lv_names lv)
    | Ast.Nonblocking (lv, _, loc) ->
      List.fold_left
        (fun acc n ->
          let id, _, _ = scope_lookup scope n in
          (id, true, loc) :: acc)
        acc (ast_lv_names lv)
    | Ast.If (_, t, e) ->
      let acc = go acc t in
      (match e with None -> acc | Some s -> go acc s)
    | Ast.Case (_, items, dflt) ->
      let acc = List.fold_left (fun acc (_, body) -> go acc body) acc items in
      (match dflt with None -> acc | Some s -> go acc s)
    | Ast.Nop -> acc
  in
  List.rev (go [] s)

let decl_info (m : Ast.module_decl) =
  (* name -> (range, kind, attrs, loc); ports without a net decl
     default to wire with the port's range. *)
  let info = Hashtbl.create 16 in
  let dirs = Hashtbl.create 16 in
  List.iter
    (fun item ->
      match item with
      | Ast.Port_decl (dir, r, names, loc) ->
        List.iter
          (fun n ->
            Hashtbl.replace dirs n dir;
            if not (Hashtbl.mem info n) then
              Hashtbl.replace info n (r, Ast.Wire, [], loc))
          names
      | Ast.Net_decl { d_kind; d_range; d_names; d_attrs; d_loc } ->
        List.iter
          (fun n ->
            let r =
              match Hashtbl.find_opt info n with
              | Some (Some r, _, _, _) -> Some r
              | _ -> d_range
            in
            Hashtbl.replace info n (r, d_kind, d_attrs, d_loc))
          d_names
      | Ast.Assign _ | Ast.Always _ | Ast.Instance _ | Ast.Directive _
      | Ast.Initial _ -> ())
    m.Ast.m_items;
  (info, dirs)

let range_lsb = function None -> 0 | Some { Ast.msb = _; lsb } -> lsb

let check_range name = function
  | Some { Ast.msb; lsb } when msb < lsb ->
    fail "descending ranges only ([msb:lsb] with msb >= lsb): %s" name
  | _ -> ()

let rec instantiate b (design : Ast.design) (m : Ast.module_decl)
    ~(prefix : string)
    ~(port_aliases : (string * (uid * int * int)) list) : unit =
  let info, _dirs = decl_info m in
  let scope = { prefix; table = Hashtbl.create 32 } in
  (* Aliased ports first: they reuse the parent's net, but are also
     reachable under their hierarchical name. *)
  List.iter
    (fun (port, ((id, _, _) as entry)) ->
      Hashtbl.replace scope.table port entry;
      let full = if prefix = "" then port else prefix ^ "." ^ port in
      if not (Hashtbl.mem b.b_by_name full) then
        Hashtbl.add b.b_by_name full id)
    port_aliases;
  (* Declare all remaining local nets. *)
  Hashtbl.iter
    (fun name (range, kind, attrs, loc) ->
      if not (Hashtbl.mem scope.table name) then begin
        check_range name range;
        let width = Ast.range_width range in
        let full = if prefix = "" then name else prefix ^ "." ^ name in
        let n = new_net b ~name:full ~width ~kind ~attrs ~loc in
        Hashtbl.replace scope.table name (n.id, range_lsb range, width)
      end)
    info;
  (* Process items. *)
  List.iter
    (fun item ->
      match item with
      | Ast.Port_decl _ | Ast.Net_decl _ -> ()
      | Ast.Directive ("control_begin", _) -> b.b_in_control <- true
      | Ast.Directive ("control_end", _) -> b.b_in_control <- false
      | Ast.Directive (payload, _) ->
        b.b_directives <-
          (if prefix = "" then payload else prefix ^ ": " ^ payload)
          :: b.b_directives
      | Ast.Initial _ -> ()
      | Ast.Assign (lv, e, loc) ->
        let sites =
          List.map
            (fun n ->
              let id, _, _ = scope_lookup scope n in
              (id, false, loc))
            (ast_lv_names lv)
        in
        add_process b ~loc ~sites
          (Assign (resolve_lv scope lv, resolve_expr scope e))
      | Ast.Always (Ast.Comb, body, loc) ->
        add_process b ~loc ~sites:(stmt_sites scope body)
          (Comb (resolve_stmt scope body))
      | Ast.Always (Ast.Edges edges, body, loc) ->
        let edges =
          List.map
            (fun (edge, name) ->
              let id, _, _ = scope_lookup scope name in
              (edge, id))
            edges
        in
        add_process b ~loc ~sites:(stmt_sites scope body)
          (Seq (edges, resolve_stmt scope body))
      | Ast.Instance { i_module; i_name; i_conns; i_loc } ->
        elaborate_instance b design scope ~i_module ~i_name ~i_conns ~i_loc)
    m.Ast.m_items

and elaborate_instance b design scope ~i_module ~i_name ~i_conns ~i_loc =
  let child =
    match Ast.find_module design i_module with
    | Some m -> m
    | None -> fail "unknown module %s" i_module
  in
  let child_info, child_dirs = decl_info child in
  let conns =
    match i_conns with
    | (Some _, _) :: _ ->
      List.map
        (function
          | Some p, e -> (p, e)
          | None, _ -> fail "mixed named and positional connections to %s"
                         i_name)
        i_conns
    | _ ->
      (* positional *)
      (try List.combine child.Ast.m_ports (List.map snd i_conns)
       with Invalid_argument _ ->
         fail "wrong number of connections to instance %s of %s" i_name
           i_module)
  in
  let child_prefix =
    if scope.prefix = "" then i_name else scope.prefix ^ "." ^ i_name
  in
  (* Split connections into aliases (plain full-width idents) and
     assignment-style connections. *)
  let aliases = ref [] in
  let later = ref [] in
  List.iter
    (fun (port, expr) ->
      let port_range, _, _, _ =
        match Hashtbl.find_opt child_info port with
        | Some entry -> entry
        | None -> fail "module %s has no port %s" i_module port
      in
      let port_width = Ast.range_width port_range in
      match expr with
      | Ast.Ident parent_name ->
        let pid, _plsb, pwidth = scope_lookup scope parent_name in
        if pwidth = port_width then
          aliases := (port, (pid, range_lsb port_range, pwidth)) :: !aliases
        else later := (port, expr) :: !later
      | _ -> later := (port, expr) :: !later)
    conns;
  instantiate b design child ~prefix:child_prefix ~port_aliases:!aliases;
  (* Now the child's nets exist; wire up non-aliased connections. *)
  let child_scope_entry port =
    let full = child_prefix ^ "." ^ port in
    match Hashtbl.find_opt b.b_by_name full with
    | Some id -> id
    | None -> fail "internal: missing child port net %s" full
  in
  List.iter
    (fun (port, expr) ->
      let dir =
        match Hashtbl.find_opt child_dirs port with
        | Some d -> d
        | None -> fail "module %s has no port %s" i_module port
      in
      let cid = child_scope_entry port in
      match dir with
      | Ast.Input ->
        add_process b ~loc:i_loc ~sites:[ (cid, false, i_loc) ]
          (Assign (Lnet cid, resolve_expr scope expr))
      | Ast.Output ->
        let lv =
          match expr with
          | Ast.Ident _ | Ast.Index _ | Ast.Range _ ->
            resolve_lv scope
              (match expr with
               | Ast.Ident n -> Ast.Lident n
               | Ast.Index (n, i) -> Ast.Lindex (n, i)
               | Ast.Range (n, h, l) -> Ast.Lrange (n, h, l)
               | _ -> assert false)
          | _ ->
            fail "output port %s of %s must connect to an lvalue" port i_name
        in
        let sites =
          List.map (fun id -> (id, false, i_loc)) (elv_write_nets lv)
        in
        add_process b ~loc:i_loc ~sites (Assign (lv, Net cid))
      | Ast.Inout ->
        fail "inout port %s of %s must connect to a plain identifier" port
          i_name)
    (List.rev !later)

let elaborate ?top (design : Ast.design) =
  let top_module =
    match top with
    | Some name ->
      (match Ast.find_module design name with
       | Some m -> m
       | None -> fail "top module %s not found" name)
    | None ->
      (match List.rev design with
       | m :: _ -> m
       | [] -> fail "empty design")
  in
  let b =
    { b_nets = []; b_count = 0; b_by_name = Hashtbl.create 64;
      b_processes = []; b_directives = []; b_in_control = false }
  in
  instantiate b design top_module ~prefix:"" ~port_aliases:[];
  let procs = List.rev b.b_processes in
  let top_inputs = Array.make b.b_count false in
  List.iter
    (fun item ->
      match item with
      | Ast.Port_decl ((Ast.Input | Ast.Inout), _, names, _) ->
        List.iter
          (fun n ->
            match Hashtbl.find_opt b.b_by_name n with
            | Some id -> top_inputs.(id) <- true
            | None -> ())
          names
      | Ast.Port_decl (Ast.Output, _, _, _)
      | Ast.Net_decl _ | Ast.Assign _ | Ast.Always _ | Ast.Instance _
      | Ast.Directive _ | Ast.Initial _ -> ())
    top_module.Ast.m_items;
  {
    nets = Array.of_list (List.rev b.b_nets);
    processes = Array.of_list (List.map (fun (p, _, _, _) -> p) procs);
    control = Array.of_list (List.map (fun (_, c, _, _) -> c) procs);
    by_name = b.b_by_name;
    top = top_module.Ast.m_name;
    directives = List.rev b.b_directives;
    top_inputs;
    process_locs = Array.of_list (List.map (fun (_, _, l, _) -> l) procs);
    write_sites = Array.of_list (List.map (fun (_, _, _, s) -> s) procs);
  }

let net t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> t.nets.(id)
  | None -> raise Not_found

let net_id t name = (net t name).id

(* ------------------------------------------------------------------ *)
(* Analysis helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec expr_width t = function
  | Const v -> Avp_logic.Bv.width v
  | Net id -> t.nets.(id).width
  | Index _ -> 1
  | Range (_, hi, lo) -> hi - lo + 1
  | Unop ((Ast.Not | Ast.Uand | Ast.Uor | Ast.Uxor), _) -> 1
  | Unop ((Ast.Bnot | Ast.Neg), e) -> expr_width t e
  | Binop ((Ast.Eq | Ast.Neq | Ast.Ceq | Ast.Cneq | Ast.Lt | Ast.Le
           | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor), _, _) -> 1
  | Binop (_, a, b) -> max (expr_width t a) (expr_width t b)
  | Ternary (_, a, b) -> max (expr_width t a) (expr_width t b)
  | Concat es -> List.fold_left (fun acc e -> acc + expr_width t e) 0 es
  | Repeat (n, e) -> n * expr_width t e

let dedup_ids ids =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun id ->
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    ids

let rec expr_nets_acc acc = function
  | Const _ -> acc
  | Net id -> id :: acc
  | Index (id, e) -> expr_nets_acc (id :: acc) e
  | Range (id, _, _) -> id :: acc
  | Unop (_, e) -> expr_nets_acc acc e
  | Binop (_, a, b) -> expr_nets_acc (expr_nets_acc acc a) b
  | Ternary (c, a, b) ->
    expr_nets_acc (expr_nets_acc (expr_nets_acc acc c) a) b
  | Concat es -> List.fold_left expr_nets_acc acc es
  | Repeat (_, e) -> expr_nets_acc acc e

let expr_nets e = dedup_ids (List.rev (expr_nets_acc [] e))

let rec lv_nets_acc acc = function
  | Lnet id -> id :: acc
  | Lindex (id, _) -> id :: acc
  | Lrange (id, _, _) -> id :: acc
  | Lconcat ls -> List.fold_left lv_nets_acc acc ls

let lv_nets lv = dedup_ids (List.rev (lv_nets_acc [] lv))

let rec lv_reads_acc acc = function
  | Lnet _ -> acc
  | Lindex (_, e) -> expr_nets_acc acc e
  | Lrange _ -> acc
  | Lconcat ls -> List.fold_left lv_reads_acc acc ls

let rec stmt_reads_acc acc = function
  | Block ss -> List.fold_left stmt_reads_acc acc ss
  | Blocking (lv, e) | Nonblocking (lv, e) ->
    expr_nets_acc (lv_reads_acc acc lv) e
  | If (c, t, e) ->
    let acc = stmt_reads_acc (expr_nets_acc acc c) t in
    (match e with None -> acc | Some s -> stmt_reads_acc acc s)
  | Case (sel, items, dflt) ->
    let acc = expr_nets_acc acc sel in
    let acc =
      List.fold_left
        (fun acc (labels, body) ->
          stmt_reads_acc (List.fold_left expr_nets_acc acc labels) body)
        acc items
    in
    (match dflt with None -> acc | Some s -> stmt_reads_acc acc s)
  | Nop -> acc

let stmt_reads s = dedup_ids (List.rev (stmt_reads_acc [] s))

let rec stmt_writes_acc acc = function
  | Block ss -> List.fold_left stmt_writes_acc acc ss
  | Blocking (lv, _) | Nonblocking (lv, _) ->
    List.rev_append (lv_nets lv) acc
  | If (_, t, e) ->
    let acc = stmt_writes_acc acc t in
    (match e with None -> acc | Some s -> stmt_writes_acc acc s)
  | Case (_, items, dflt) ->
    let acc =
      List.fold_left (fun acc (_, body) -> stmt_writes_acc acc body) acc items
    in
    (match dflt with None -> acc | Some s -> stmt_writes_acc acc s)
  | Nop -> acc

let stmt_writes s = dedup_ids (List.rev (stmt_writes_acc [] s))

let pp_summary ppf t =
  let count p = Array.to_list t.processes |> List.filter p |> List.length in
  Format.fprintf ppf
    "design %s: %d nets, %d processes (%d assign, %d comb, %d seq)" t.top
    (Array.length t.nets)
    (Array.length t.processes)
    (count (function Assign _ -> true | _ -> false))
    (count (function Comb _ -> true | _ -> false))
    (count (function Seq _ -> true | _ -> false))
