(** Compiled-code simulation backend.

    Elaborated designs whose nets all fit the packed two-plane
    bitvector representation (width <= {!Avp_logic.Bv.packed_width_limit})
    are flattened into per-unit bytecode programs executed by a
    scratch-buffer stack machine: no [Bv.t] is allocated on the hot
    path, expression results live in two native-int planes on a
    preallocated stack.  [create] returns [None] when the design uses
    a construct the compiler does not cover (wide nets, ternaries with
    unequal arm widths); callers fall back to the tree-walking
    interpreter in {!Sim}, which doubles as the differential oracle. *)

open Avp_logic

exception Comb_loop of string
(** Same meaning as [Sim.Comb_loop]; [Sim] re-exports this one. *)

(** Static evaluation-unit analysis shared by both engines: units are
    resolution of a driven net (unit id = net id) or a combinational
    block (unit id = net count + block index).  [readers.(net)] lists
    the units to re-run when [net] changes, in the same order the
    interpreter historically used. *)
type units = {
  drivers : (Elab.elv * Elab.eexpr) list array;
  comb : Elab.estmt array;
  seq : ((Ast.edge * Elab.uid) list * Elab.estmt) array;
  readers : int array array;
  unit_count : int;
}

val units : Elab.t -> units

(** {1 Proven-invariant folding}

    [facts.(id) = Some c] promises net [id] holds the 4-state value
    [c] whenever any expression reading it is evaluated — settled
    values, register power-on values and intra-process blocking
    overlays included (the contract the abstract interpreter in
    [Avp_analysis.Absint] proves with its [steady] environment; a
    memoryless comb net's pre-first-settle Z is unobservable by
    expressions and need not be covered).
    Under it {!specialize} substitutes the constants into every
    expression and resolves guards that become constant to their
    taken branch, so both engines skip the pruned work.  The promise
    covers stimulus: a caller must only poke or force nets its facts
    left unconstrained. *)
val unop_val : Ast.unop -> Bv.t -> Bv.t

val binop_val : Ast.binop -> Bv.t -> Bv.t -> Bv.t
(** Constant evaluation with the engines' semantics (shift result
    width is the left operand's, comparisons yield one bit) — the
    ground truth abstract transfer functions collapse to on fully
    known operands. *)

type facts = Avp_logic.Bv.t option array

val make_facts : Elab.t -> (Elab.uid * Avp_logic.Bv.t) list -> facts
(** Constants resized to their net's declared width; unlisted nets
    stay unconstrained. *)

val facts_count : facts -> int
(** How many nets the facts pin. *)

val specialize : facts -> Elab.t -> Elab.t
(** The invariant-folded design: same nets, same process shape
    (bodies may shrink to [Nop], none are removed), constants
    substituted and dead guards resolved.  Re-run {!units} on the
    result — the specialized processes read fewer nets, which is
    where the settle-time win comes from. *)

type t

type prog
(** An immutable compiled program: the per-unit bytecode, scratch
    sizes and static analysis, with no runtime state.  Assembling it
    is the expensive half of {!create}; {!instantiate} is cheap, so
    callers that simulate the same design many times (one simulator
    per replay trace, hundreds of traces) compile once and
    instantiate per run. *)

val compile : ?u:units -> ?facts:facts -> Elab.t -> prog option
(** [None] when the design cannot be compiled (fall back to the
    interpreter).  Pass [?u] to reuse an existing analysis; [?facts]
    applies {!apply_facts} to it first. *)

val instantiate : prog -> t
(** A fresh simulator (nets at their reset-free initial X/Z values)
    running the given program.  Instances share only immutable data
    and may live on different domains. *)

val prog_units : prog -> units

val create : ?u:units -> ?facts:facts -> Elab.t -> t option
(** [compile] followed by {!instantiate}. *)

val design : t -> Elab.t
val time : t -> int
val get_id : t -> Elab.uid -> Bv.t
val poke_id : t -> Elab.uid -> Bv.t -> unit
(** Write without settling; resized to the net's width, ignored if
    the net is forced. *)

val set_id : t -> Elab.uid -> Bv.t -> unit
(** [poke_id] followed by {!settle}. *)

val force_id : t -> Elab.uid -> Bv.t -> unit
val release_id : t -> Elab.uid -> unit
val forced_id : t -> Elab.uid -> bool

val settle : t -> unit
(** @raise Comb_loop when no fixpoint is reached. *)

val step : t -> edge:Ast.edge -> Elab.uid -> unit
(** Settle, fire sequential blocks on the edge of the given clock
    net, commit nonblocking updates, advance time, settle again. *)
