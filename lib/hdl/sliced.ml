(* Bit-sliced batched simulation: up to 62 independent simulations of
   one design advance word-parallel through a single compiled kernel.

   The representation is the transpose of the scalar compiled engine's:
   where [Compile] packs a net's bits into two plane words, here every
   net keeps one word PER BIT, and bit L of that word belongs to lane
   L ([Avp_logic.Bv_sliced]).  All evaluation-unit structure — driver
   resolution, worklist settling, the seq-process blocking overlay,
   the NBA commit queue, per-net force state — mirrors [Compile]
   exactly, so lane L of a batched run is bit-identical to a scalar
   run; the scalar engines stay the differential oracle.

   Mutant schemata: [create_schemata] compiles the pristine design
   ONCE with per-lane mutation selects.  Each vetted mutant differs
   from the base elaboration at a single expression site (or turns one
   nonblocking assign into a Nop — the drop-assign family), so the
   merged program carries [XSel (lane_mask, mutant_expr, original)]
   nodes — a lane-masked mux between the two expressions — and
   [XDrop (lane_mask, stmt)] guards.  A full mutation campaign over N
   mutants then costs ceil(N/62) word-parallel replays instead of N
   sequential ones.

   The kernel is closure-compiled rather than bytecode: control flow
   is predicated (an If runs BOTH branches, each under the lane mask
   of the lanes that took it), so per-step cost is roughly the union
   of all lanes' work — which is exactly what the 62-way parallelism
   pays for. *)

open Avp_logic
module Sl = Bv_sliced

let lmask = Sl.lmask

(* ------------------------------------------------------------------ *)
(* Schemata IR: the elaborated design plus per-lane mutation selects  *)
(* ------------------------------------------------------------------ *)

type xe =
  | XConst of Bv.t
  | XNet of Elab.uid
  | XIndex of Elab.uid * xe
  | XRange of Elab.uid * int * int
  | XUnop of Ast.unop * xe
  | XBinop of Ast.binop * xe * xe
  | XTernary of xe * xe * xe
  | XConcat of xe list
  | XRepeat of int * xe
  | XSel of int * xe * xe  (** lanes in the mask read the first arm *)

type xs =
  | XBlock of xs list
  | XBlocking of Elab.elv * xe
  | XNonblocking of Elab.elv * xe
  | XIf of xe * xs * xs option
  | XCase of xe * (xe list * xs) list * xs option
  | XNop
  | XDrop of int * xs  (** lanes in the mask skip the statement *)

type xp =
  | XAssign of Elab.elv * xe
  | XComb of xs
  | XSeq of (Ast.edge * Elab.uid) list * xs

let rec inj_e : Elab.eexpr -> xe = function
  | Elab.Const v -> XConst v
  | Elab.Net id -> XNet id
  | Elab.Index (id, i) -> XIndex (id, inj_e i)
  | Elab.Range (id, hi, lo) -> XRange (id, hi, lo)
  | Elab.Unop (op, e) -> XUnop (op, inj_e e)
  | Elab.Binop (op, a, b) -> XBinop (op, inj_e a, inj_e b)
  | Elab.Ternary (c, a, b) -> XTernary (inj_e c, inj_e a, inj_e b)
  | Elab.Concat es -> XConcat (List.map inj_e es)
  | Elab.Repeat (n, e) -> XRepeat (n, inj_e e)

let rec inj_s : Elab.estmt -> xs = function
  | Elab.Block ss -> XBlock (List.map inj_s ss)
  | Elab.Blocking (lv, e) -> XBlocking (lv, inj_e e)
  | Elab.Nonblocking (lv, e) -> XNonblocking (lv, inj_e e)
  | Elab.If (c, t, e) -> XIf (inj_e c, inj_s t, Option.map inj_s e)
  | Elab.Case (sel, items, dflt) ->
    XCase
      ( inj_e sel,
        List.map (fun (ls, s) -> (List.map inj_e ls, inj_s s)) items,
        Option.map inj_s dflt )
  | Elab.Nop -> XNop

let inj_p : Elab.process -> xp = function
  | Elab.Assign (lv, e) -> XAssign (lv, inj_e e)
  | Elab.Comb s -> XComb (inj_s s)
  | Elab.Seq (edges, s) -> XSeq (edges, inj_s s)

(* ------------------------------------------------------------------ *)
(* Merging one mutant into the IR                                     *)
(* ------------------------------------------------------------------ *)

(* Every mutation operator rewrites a single expression subtree (or
   turns one nonblocking assignment into a Nop) and never touches
   lvalues, so base and mutant elaborations are structurally parallel
   with exactly one divergence.  The merge walks both in lockstep; at
   the divergence it wraps the current IR node in a lane select.
   Wrapping any ancestor of the real site is equally correct (those
   lanes just read the whole mutant subtree), so the walk descends
   only while the divergence stays confined to one child and wraps
   where that stops being decidable.  [None] means the mutant cannot
   be scheduled into the schemata and falls back to the scalar path. *)

exception Mismatch

let rec merge_e ~mask (cur : xe) (base : Elab.eexpr) (mut : Elab.eexpr) : xe =
  if base = mut then cur
  else
    match cur with
    | XSel (m, a, inner) -> XSel (m, a, merge_e ~mask inner base mut)
    | _ -> (
      let site () = XSel (mask, inj_e mut, cur) in
      match (cur, base, mut) with
      | XIndex (ci, cx), Elab.Index (bi, bx), Elab.Index (mi, mx)
        when bi = mi && ci = bi ->
        XIndex (ci, merge_e ~mask cx bx mx)
      | XUnop (cop, cx), Elab.Unop (bop, bx), Elab.Unop (mop, mx)
        when bop = mop && cop = bop ->
        XUnop (cop, merge_e ~mask cx bx mx)
      | ( XBinop (cop, ca, cb),
          Elab.Binop (bop, ba, bb),
          Elab.Binop (mop, ma, mb) )
        when bop = mop && cop = bop ->
        if ba = ma then XBinop (cop, ca, merge_e ~mask cb bb mb)
        else if bb = mb then XBinop (cop, merge_e ~mask ca ba ma, cb)
        else site ()
      | ( XTernary (cc, ca, cb),
          Elab.Ternary (bc, ba, bb),
          Elab.Ternary (mc, ma, mb) ) ->
        if ba = ma && bb = mb then XTernary (merge_e ~mask cc bc mc, ca, cb)
        else if bc = mc && bb = mb then
          XTernary (cc, merge_e ~mask ca ba ma, cb)
        else if bc = mc && ba = ma then
          XTernary (cc, ca, merge_e ~mask cb bb mb)
        else site ()
      | XConcat cs, Elab.Concat bs, Elab.Concat ms
        when List.length bs = List.length ms
             && List.length cs = List.length bs -> (
        match
          List.map2 (fun b m -> b <> m) bs ms
          |> List.mapi (fun i d -> (i, d))
          |> List.filter snd
        with
        | [ (i, _) ] ->
          XConcat
            (List.mapi
               (fun j c ->
                 if j = i then
                   merge_e ~mask c (List.nth bs i) (List.nth ms i)
                 else c)
               cs)
        | _ -> site ())
      | XRepeat (cn, cx), Elab.Repeat (bn, bx), Elab.Repeat (mn, mx)
        when bn = mn && cn = bn ->
        XRepeat (cn, merge_e ~mask cx bx mx)
      | _ -> site ())

let rec merge_s ~mask (cur : xs) (base : Elab.estmt) (mut : Elab.estmt) : xs =
  if base = mut then cur
  else
    match cur with
    | XDrop (m, inner) -> XDrop (m, merge_s ~mask inner base mut)
    | _ -> (
      match (cur, base, mut) with
      | XNonblocking _, Elab.Nonblocking _, Elab.Nop ->
        (* The drop-assign family: the statement vanishes for these
           lanes. *)
        XDrop (mask, cur)
      | XBlock cs, Elab.Block bs, Elab.Block ms
        when List.length bs = List.length ms
             && List.length cs = List.length bs -> (
        match
          List.map2 (fun b m -> b <> m) bs ms
          |> List.mapi (fun i d -> (i, d))
          |> List.filter snd
        with
        | [ (i, _) ] ->
          XBlock
            (List.mapi
               (fun j c ->
                 if j = i then
                   merge_s ~mask c (List.nth bs i) (List.nth ms i)
                 else c)
               cs)
        | _ -> raise Mismatch)
      | XBlocking (clv, ce), Elab.Blocking (blv, be), Elab.Blocking (mlv, me)
        when blv = mlv && clv = blv ->
        XBlocking (clv, merge_e ~mask ce be me)
      | ( XNonblocking (clv, ce),
          Elab.Nonblocking (blv, be),
          Elab.Nonblocking (mlv, me) )
        when blv = mlv && clv = blv ->
        XNonblocking (clv, merge_e ~mask ce be me)
      | XIf (cc, ct, ce), Elab.If (bc, bt, be), Elab.If (mc, mt, me) ->
        if bt = mt && be = me then XIf (merge_e ~mask cc bc mc, ct, ce)
        else if bc = mc && be = me then
          XIf (cc, merge_s ~mask ct bt mt, ce)
        else if bc = mc && bt = mt then begin
          match (ce, be, me) with
          | Some ce, Some be, Some me ->
            XIf (cc, ct, Some (merge_s ~mask ce be me))
          | _ -> raise Mismatch
        end
        else raise Mismatch
      | ( XCase (cs, cis, cd),
          Elab.Case (bs, bis, bd),
          Elab.Case (ms, mis, md) )
        when List.length bis = List.length mis
             && List.length cis = List.length bis ->
        if bis = mis && bd = md then XCase (merge_e ~mask cs bs ms, cis, cd)
        else if bs = ms && bis = mis then begin
          match (cd, bd, md) with
          | Some cd, Some bd, Some md ->
            XCase (cs, cis, Some (merge_s ~mask cd bd md))
          | _ -> raise Mismatch
        end
        else if bs = ms && bd = md then begin
          match
            List.map2 (fun b m -> b <> m) bis mis
            |> List.mapi (fun i d -> (i, d))
            |> List.filter snd
          with
          | [ (i, _) ] ->
            let bl, bb = List.nth bis i and ml, mb = List.nth mis i in
            let cl, cb = List.nth cis i in
            let item =
              if bb = mb then begin
                (* One label differs. *)
                if List.length bl <> List.length ml then raise Mismatch;
                match
                  List.map2 (fun b m -> b <> m) bl ml
                  |> List.mapi (fun j d -> (j, d))
                  |> List.filter snd
                with
                | [ (j, _) ] ->
                  ( List.mapi
                      (fun k c ->
                        if k = j then
                          merge_e ~mask c (List.nth bl j) (List.nth ml j)
                        else c)
                      cl,
                    cb )
                | _ -> raise Mismatch
              end
              else if bl = ml then (cl, merge_s ~mask cb bb mb)
              else raise Mismatch
            in
            XCase
              (cs, List.mapi (fun j it -> if j = i then item else it) cis, cd)
          | _ -> raise Mismatch
        end
        else raise Mismatch
      | _ -> raise Mismatch)

let merge_p ~mask (cur : xp) (base : Elab.process) (mut : Elab.process) : xp =
  match (cur, base, mut) with
  | XAssign (clv, ce), Elab.Assign (blv, be), Elab.Assign (mlv, me)
    when blv = mlv && clv = blv ->
    XAssign (clv, merge_e ~mask ce be me)
  | XComb cs, Elab.Comb bs, Elab.Comb ms -> XComb (merge_s ~mask cs bs ms)
  | XSeq (ced, cs), Elab.Seq (bed, bs), Elab.Seq (med, ms)
    when bed = med && ced = bed ->
    XSeq (ced, merge_s ~mask cs bs ms)
  | _ -> raise Mismatch

(* Merge mutant [md] (lane mask [mask]) into the IR process array.
   Returns false — leaving the IR untouched — when the mutant cannot
   be scheduled (unexpected shape divergence, differing net tables). *)
let merge_mutant ~mask (procs : xp array) (base : Elab.t) (md : Elab.t) =
  let ok =
    Array.length base.Elab.nets = Array.length md.Elab.nets
    && Array.for_all2 ( = ) base.Elab.nets md.Elab.nets
    && Array.length base.Elab.processes = Array.length md.Elab.processes
  in
  if not ok then false
  else begin
    let diffs = ref [] in
    Array.iteri
      (fun i bp ->
        if bp <> md.Elab.processes.(i) then diffs := i :: !diffs)
      base.Elab.processes;
    match !diffs with
    | [] -> true (* elaborates identically to the base: a pristine lane *)
    | [ i ] -> (
      match
        merge_p ~mask procs.(i) base.Elab.processes.(i)
          md.Elab.processes.(i)
      with
      | p ->
        procs.(i) <- p;
        true
      | exception Mismatch -> false)
    | _ -> false
  end

(* ------------------------------------------------------------------ *)
(* Runtime state                                                      *)
(* ------------------------------------------------------------------ *)

type st = {
  d : Elab.t;
  u : Compile.units;
  lanes : int;
  amask : int;  (** active-lane mask, [(1 lsl lanes) - 1] *)
  widths : int array;
  nv : int array array;  (** per net, one value word per bit *)
  nu : int array array;
  forced : int array;  (** per net, mask of forced lanes *)
  (* Blocking-write overlay for sequential processes, per net. *)
  ov_v : int array array;
  ov_u : int array array;
  ov_set : Bytes.t;
  touched : int array;
  mutable n_touched : int;
  mutable nba : (unit -> unit) list;  (** reversed commit closures *)
  queue : int array;
  mutable qh : int;
  mutable qt : int;
  in_queue : Bytes.t;
  mutable dirty_all : bool;
  mutable frozen : int;  (** lanes whose writes are suppressed *)
  mutable time : int;
  mutable last_changed : int;
}

type t = {
  st : st;
  units_fn : (unit -> unit) array;  (** per unit id, [fun () -> ()] when idle *)
  seq_fn : ((Ast.edge * Elab.uid) list * (unit -> unit)) array;
}

let design t = t.st.d
let lanes t = t.st.lanes
let amask t = t.st.amask
let time t = t.st.time

let enqueue st unit =
  if Bytes.get st.in_queue unit = '\000' then begin
    Bytes.set st.in_queue unit '\001';
    st.queue.(st.qt) <- unit;
    st.qt <- (st.qt + 1) mod Array.length st.queue
  end

let mark_readers st id =
  let rs = st.u.Compile.readers.(id) in
  for i = 0 to Array.length rs - 1 do
    enqueue st rs.(i)
  done

let mark st id =
  st.last_changed <- id;
  mark_readers st id

(* ------------------------------------------------------------------ *)
(* Expression compilation                                             *)
(* ------------------------------------------------------------------ *)

(* Reads return views over the live net words; every operator
   allocates fresh words, so views stay valid for the extent of one
   statement's evaluation.  Values whose lifetime crosses a write
   boundary (NBA) capture the words they need as immutable ints. *)

let read_net st ~seq id : unit -> Sl.t =
  let w = st.widths.(id) in
  (* The per-net words are filled in place and never reassigned, so
     the views are allocated once at compile time. *)
  let cur = { Sl.w; v = st.nv.(id); u = st.nu.(id) } in
  if seq then begin
    let old = { Sl.w; v = st.ov_v.(id); u = st.ov_u.(id) } in
    fun () -> if Bytes.get st.ov_set id = '\001' then old else cur
  end
  else fun () -> cur

let rec xe_width (d : Elab.t) (e : xe) : int =
  match e with
  | XConst bv -> Bv.width bv
  | XNet id -> d.Elab.nets.(id).Elab.width
  | XIndex _ -> 1
  | XRange (_, hi, lo) -> hi - lo + 1
  | XUnop ((Ast.Not | Ast.Uand | Ast.Uor | Ast.Uxor), _) -> 1
  | XUnop ((Ast.Bnot | Ast.Neg), e) -> xe_width d e
  | XBinop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Band | Ast.Bor | Ast.Bxor), a, b)
    ->
    max (xe_width d a) (xe_width d b)
  | XBinop
      ( ( Ast.Land | Ast.Lor | Ast.Eq | Ast.Neq | Ast.Ceq | Ast.Cneq | Ast.Lt
        | Ast.Le | Ast.Gt | Ast.Ge ),
        _,
        _ ) ->
    1
  | XBinop ((Ast.Shl | Ast.Shr), a, _) -> xe_width d a
  | XTernary (_, a, b) -> max (xe_width d a) (xe_width d b)
  | XConcat es -> List.fold_left (fun acc e -> acc + xe_width d e) 0 es
  | XRepeat (n, e) -> n * xe_width d e
  | XSel (_, a, b) -> max (xe_width d a) (xe_width d b)

(* Every node's result width is static, so each compiled node owns
   its destination buffer, allocated here once: a settle pass fills
   buffers in place and allocates nothing.  A node's buffer is only
   overwritten by that node's own next evaluation, and every consumer
   (parent node, commit, NBA capture) copies what it needs before
   then — the same single-statement lifetime the net views have. *)
let rec cexpr st ~seq (e : xe) : unit -> Sl.t =
  match e with
  | XConst bv ->
    let c = Sl.broadcast bv in
    fun () -> c
  | XNet id -> read_net st ~seq id
  | XIndex (id, ie) ->
    let rd = read_net st ~seq id and gi = cexpr st ~seq ie in
    let dst = Sl.create 1 in
    fun () ->
      Sl.index_into dst (rd ()) (gi ());
      dst
  | XRange (id, hi, lo) ->
    if lo < 0 || hi < lo || hi >= st.widths.(id) then
      invalid_arg "Bv_sliced.select: bad range";
    let rd = read_net st ~seq id in
    let dst = Sl.create (hi - lo + 1) in
    fun () ->
      Sl.select_into dst (rd ()) ~lo;
      dst
  | XUnop (op, e) ->
    let g = cexpr st ~seq e in
    let f, w =
      match op with
      | Ast.Not -> (Sl.logical_not_into, 1)
      | Ast.Bnot -> (Sl.lognot_into, xe_width st.d e)
      | Ast.Uand -> (Sl.reduce_and_into, 1)
      | Ast.Uor -> (Sl.reduce_or_into, 1)
      | Ast.Uxor -> (Sl.reduce_xor_into, 1)
      | Ast.Neg -> (Sl.neg_into, xe_width st.d e)
    in
    let dst = Sl.create w in
    fun () ->
      f dst (g ());
      dst
  | XBinop (op, a, b) as e ->
    let ga = cexpr st ~seq a and gb = cexpr st ~seq b in
    let f =
      match op with
      | Ast.Add -> Sl.add_into
      | Ast.Sub -> Sl.sub_into
      | Ast.Mul -> Sl.mul_into
      | Ast.Band -> Sl.logand_into
      | Ast.Bor -> Sl.logor_into
      | Ast.Bxor -> Sl.logxor_into
      | Ast.Land -> Sl.logical_and_into
      | Ast.Lor -> Sl.logical_or_into
      | Ast.Eq -> Sl.eq_into
      | Ast.Neq -> Sl.neq_into
      | Ast.Ceq -> Sl.case_eq_into
      | Ast.Cneq -> Sl.case_neq_into
      | Ast.Lt -> Sl.lt_into
      | Ast.Le -> Sl.le_into
      | Ast.Gt -> Sl.gt_into
      | Ast.Ge -> Sl.ge_into
      | Ast.Shl -> Sl.shift_left_into
      | Ast.Shr -> Sl.shift_right_into
    in
    let dst = Sl.create (xe_width st.d e) in
    fun () ->
      f dst (ga ()) (gb ());
      dst
  | XTernary (c, a, b) as e ->
    let gc = cexpr st ~seq c
    and ga = cexpr st ~seq a
    and gb = cexpr st ~seq b in
    let dst = Sl.create (xe_width st.d e) in
    fun () ->
      Sl.mux_into ~sel:(gc ()) dst (ga ()) (gb ());
      dst
  | XConcat es -> (
    match es with
    | [] -> invalid_arg "empty concat"
    | es ->
      (* MSB-first: the last element lands at bit 0. *)
      let parts = List.map (fun e -> (cexpr st ~seq e, xe_width st.d e)) es in
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 parts in
      let dst = Sl.create total in
      let parts =
        let off = ref total in
        List.map
          (fun (g, w) ->
            off := !off - w;
            (g, w, !off))
          parts
      in
      fun () ->
        List.iter
          (fun (g, w, off) ->
            let p = g () in
            Array.blit p.Sl.v 0 dst.Sl.v off w;
            Array.blit p.Sl.u 0 dst.Sl.u off w)
          parts;
        dst)
  | XRepeat (n, e) ->
    if n <= 0 then invalid_arg "Bv_sliced.repeat: count must be positive";
    let g = cexpr st ~seq e in
    let w = xe_width st.d e in
    let dst = Sl.create (n * w) in
    fun () ->
      let p = g () in
      for i = 0 to n - 1 do
        Array.blit p.Sl.v 0 dst.Sl.v (i * w) w;
        Array.blit p.Sl.u 0 dst.Sl.u (i * w) w
      done;
      dst
  | XSel (mask, a, b) as e ->
    let ga = cexpr st ~seq a and gb = cexpr st ~seq b in
    let dst = Sl.create (xe_width st.d e) in
    fun () ->
      Sl.merge_into ~mask dst (ga ()) (gb ());
      dst

(* The scalar compiled engine rejects ternaries with unequal arm
   widths (per-lane result widths would diverge); the schemata engine
   inherits the restriction. *)
exception Unsupported

let rec check_e (d : Elab.t) (e : xe) =
  match e with
  | XConst _ | XNet _ | XRange _ -> ()
  | XIndex (_, i) -> check_e d i
  | XUnop (_, e) | XRepeat (_, e) -> check_e d e
  | XBinop (_, a, b) -> check_e d a; check_e d b
  | XTernary (c, a, b) ->
    check_e d c;
    check_e d a;
    check_e d b;
    if xe_width d a <> xe_width d b then raise Unsupported
  | XConcat es -> List.iter (check_e d) es
  | XSel (_, a, b) -> check_e d a; check_e d b
let rec check_s d (s : xs) =
  match s with
  | XBlock ss -> List.iter (check_s d) ss
  | XBlocking (_, e) | XNonblocking (_, e) -> check_e d e
  | XIf (c, t, e) ->
    check_e d c;
    check_s d t;
    Option.iter (check_s d) e
  | XCase (sel, items, dflt) ->
    check_e d sel;
    List.iter
      (fun (ls, s) ->
        List.iter (check_e d) ls;
        check_s d s)
      items;
    Option.iter (check_s d) dflt
  | XNop -> ()
  | XDrop (_, s) -> check_s d s

(* ------------------------------------------------------------------ *)
(* Writes                                                             *)
(* ------------------------------------------------------------------ *)

(* Commit [value] bits [voff..voff+w-1] into net [id] bits
   [lo..lo+w-1] for the lanes in [en], skipping forced lanes, marking
   readers on change — the comb blocking write (wrc). *)
let commit_comb st id ~lo ~w (value : Sl.t) ~voff en =
  let en = en land lnot st.forced.(id) land lnot st.frozen in
  if en <> 0 then begin
    let nv = st.nv.(id) and nu = st.nu.(id) in
    let changed = ref false in
    for k = 0 to w - 1 do
      let j = lo + k in
      let vv = if voff + k < value.Sl.w then value.Sl.v.(voff + k) else 0
      and vu = if voff + k < value.Sl.w then value.Sl.u.(voff + k) else 0 in
      let v' = (nv.(j) land lnot en) lor (vv land en)
      and u' = (nu.(j) land lnot en) lor (vu land en) in
      if v' <> nv.(j) || u' <> nu.(j) then begin
        nv.(j) <- v';
        nu.(j) <- u';
        changed := true
      end
    done;
    if !changed then mark st id
  end

(* Ensure the seq-process overlay holds net [id], copying the live
   words on first touch. *)
let overlay_touch st id =
  if Bytes.get st.ov_set id = '\000' then begin
    Bytes.set st.ov_set id '\001';
    st.touched.(st.n_touched) <- id;
    st.n_touched <- st.n_touched + 1;
    Array.blit st.nv.(id) 0 st.ov_v.(id) 0 st.widths.(id);
    Array.blit st.nu.(id) 0 st.ov_u.(id) 0 st.widths.(id)
  end

(* Seq blocking write (wrs): overlay only, no forced check, no
   marking — the overlay is read-through state for later statements
   of the same process and is never committed to the nets. *)
let commit_overlay st id ~lo ~w (value : Sl.t) ~voff en =
  if en <> 0 then begin
    overlay_touch st id;
    let ov = st.ov_v.(id) and ou = st.ov_u.(id) in
    for k = 0 to w - 1 do
      let j = lo + k in
      let vv = if voff + k < value.Sl.w then value.Sl.v.(voff + k) else 0
      and vu = if voff + k < value.Sl.w then value.Sl.u.(voff + k) else 0 in
      ov.(j) <- (ov.(j) land lnot en) lor (vv land en);
      ou.(j) <- (ou.(j) land lnot en) lor (vu land en)
    done
  end

(* Nonblocking write: capture the words now, commit at the end of the
   step, checking forced lanes at commit time (wrn). *)
let commit_nba st id ~lo ~w (value : Sl.t) ~voff en =
  if en <> 0 then begin
    let vs = Array.init w (fun k ->
        if voff + k < value.Sl.w then value.Sl.v.(voff + k) else 0)
    and us = Array.init w (fun k ->
        if voff + k < value.Sl.w then value.Sl.u.(voff + k) else 0) in
    st.nba <-
      (fun () ->
        let en = en land lnot st.forced.(id) land lnot st.frozen in
        if en <> 0 then begin
          let nv = st.nv.(id) and nu = st.nu.(id) in
          let changed = ref false in
          for k = 0 to w - 1 do
            let j = lo + k in
            let v' = (nv.(j) land lnot en) lor (vs.(k) land en)
            and u' = (nu.(j) land lnot en) lor (us.(k) land en) in
            if v' <> nv.(j) || u' <> nu.(j) then begin
              nv.(j) <- v';
              nu.(j) <- u';
              changed := true
            end
          done;
          if !changed then mark_readers st id
        end)
      :: st.nba
  end

type write_mode = Direct | Overlay | Nba

(* Compile an lvalue into a writer: [wr en value] splits [value]
   (resized to the lvalue's total width) across the components,
   LSB-first, exactly like the interpreter's lv_pieces.  Dynamic
   index components decode per lane; undefined or out-of-range lanes
   produce no write. *)
let clv st ~seq ~mode (lv : Elab.elv) : int -> Sl.t -> unit =
  let commit =
    match mode with
    | Direct -> commit_comb st
    | Overlay -> commit_overlay st
    | Nba -> commit_nba st
  in
  (* Build per-component writers with their LSB offsets into the
     value. *)
  let writers = ref [] in
  let rec walk lv offset =
    match lv with
    | Elab.Lnet id ->
      let w = st.widths.(id) in
      writers :=
        (fun en value -> commit id ~lo:0 ~w value ~voff:offset en)
        :: !writers;
      offset + w
    | Elab.Lrange (id, hi, lo) ->
      let w = hi - lo + 1 in
      writers :=
        (fun en value -> commit id ~lo ~w value ~voff:offset en) :: !writers;
      offset + w
    | Elab.Lindex (id, idx) ->
      let gi = cexpr st ~seq (inj_e idx) in
      let w = st.widths.(id) in
      writers :=
        (fun en value ->
          let iv = gi () in
          for n = 0 to w - 1 do
            let enn = en land Sl.eq_const_lanes iv n in
            if enn <> 0 then commit id ~lo:n ~w:1 value ~voff:offset enn
          done)
        :: !writers;
      offset + 1
    | Elab.Lconcat ls -> List.fold_left (fun off l -> walk l off) offset ls
  in
  (* Components are laid out LSB-first in reverse concat order. *)
  ignore
    (match lv with
    | Elab.Lconcat ls -> List.fold_left (fun off l -> walk l off) 0 (List.rev ls)
    | _ -> walk lv 0);
  let writers = List.rev !writers in
  (* No resize: the commit paths zero-extend reads past the value's
     width, and the component windows never read past the lvalue's
     total width — the same result resizing would produce. *)
  fun en value -> List.iter (fun wr -> wr en value) writers

(* ------------------------------------------------------------------ *)
(* Statement compilation (predicated control flow)                    *)
(* ------------------------------------------------------------------ *)

let rec cstmt st ~seq (s : xs) : int -> unit =
  match s with
  | XNop -> fun _ -> ()
  | XBlock ss ->
    let fs = List.map (cstmt st ~seq) ss in
    fun en -> List.iter (fun f -> f en) fs
  | XDrop (mask, s) ->
    let f = cstmt st ~seq s in
    fun en -> f (en land lnot mask)
  | XBlocking (lv, e) ->
    let ge = cexpr st ~seq e in
    let wr = clv st ~seq ~mode:(if seq then Overlay else Direct) lv in
    fun en -> if en <> 0 then wr en (ge ())
  | XNonblocking (lv, e) ->
    (* In a comb process a nonblocking write degenerates to blocking,
       as in both scalar engines. *)
    let ge = cexpr st ~seq e in
    let wr = clv st ~seq ~mode:(if seq then Nba else Direct) lv in
    fun en -> if en <> 0 then wr en (ge ())
  | XIf (c, t, e) ->
    let gc = cexpr st ~seq c in
    let ft = cstmt st ~seq t in
    let fe = match e with Some s -> cstmt st ~seq s | None -> fun _ -> () in
    fun en ->
      if en <> 0 then begin
        (* Lanes with a definitely-true condition take the then
           branch; false AND undecided lanes take the else branch,
           matching the interpreter. *)
        let t1, t0, tx = Sl.truth (gc ()) in
        ft (en land t1);
        fe (en land (t0 lor tx))
      end
  | XCase (sel, items, dflt) ->
    let gsel = cexpr st ~seq sel in
    let citems =
      List.map
        (fun (ls, s) -> (List.map (cexpr st ~seq) ls, cstmt st ~seq s))
        items
    in
    let fd =
      match dflt with Some s -> cstmt st ~seq s | None -> fun _ -> ()
    in
    let ceq = Sl.create 1 in
    fun en ->
      if en <> 0 then begin
        let vs = gsel () in
        (* First matching item claims the lane ([===] labels, always
           defined); remaining lanes fall through to the default. *)
        let rem = ref en in
        List.iter
          (fun (gls, body) ->
            if !rem <> 0 then begin
              let m =
                List.fold_left
                  (fun acc gl ->
                    Sl.case_eq_into ceq vs (gl ());
                    acc lor ceq.Sl.v.(0))
                  0 gls
              in
              let m = !rem land m in
              if m <> 0 then begin
                body m;
                rem := !rem land lnot m
              end
            end)
          citems;
        fd !rem
      end

(* ------------------------------------------------------------------ *)
(* Driver (continuous-assignment) units                               *)
(* ------------------------------------------------------------------ *)

(* Resolution of every contribution to net [nid]: start from all-Z,
   insert each driver's pieces of this net (other lanes/bits stay Z),
   fold with wire resolution, and commit as a comb write — the
   closure analogue of emit_driver. *)
let cdriver st nid (dlist : (Elab.elv * xe) list) : unit -> unit =
  let wn = st.widths.(nid) in
  match dlist with
  | [ (Elab.Lnet id, e) ] when id = nid ->
    (* The common shape: one driver covering the whole net.  Wire
       resolution against all-Z is the identity, so the expression
       commits directly (the commit zero-extends/truncates to the
       net width). *)
    let ge = cexpr st ~seq:false e in
    fun () -> commit_comb st nid ~lo:0 ~w:wn (ge ()) ~voff:0 st.amask
  | _ ->
  let contribs =
    List.map
      (fun (lv, e) ->
        let ge = cexpr st ~seq:false e in
        match lv with
        | Elab.Lnet id when id = nid ->
          fun () -> Sl.resize (ge ()) wn
        | _ ->
          let rec lv_width = function
            | Elab.Lnet id -> st.widths.(id)
            | Elab.Lindex _ -> 1
            | Elab.Lrange (_, hi, lo) -> hi - lo + 1
            | Elab.Lconcat ls ->
              List.fold_left (fun a l -> a + lv_width l) 0 ls
          in
          let total = lv_width lv in
          (* Static insertion plan: (net-bit, value-bit) pairs, plus
             dynamic-index slots decoded per lane at run time. *)
          let stat = ref [] and dyn = ref [] in
          let rec walk lv off =
            match lv with
            | Elab.Lnet id ->
              let w = st.widths.(id) in
              if id = nid then
                for k = 0 to w - 1 do
                  stat := (k, off + k) :: !stat
                done;
              off + w
            | Elab.Lrange (id, hi, lo) ->
              let w = hi - lo + 1 in
              if id = nid then
                for k = 0 to w - 1 do
                  stat := (lo + k, off + k) :: !stat
                done;
              off + w
            | Elab.Lindex (id, idx) ->
              if id = nid then
                dyn := (cexpr st ~seq:false (inj_e idx), off) :: !dyn;
              off + 1
            | Elab.Lconcat ls ->
              List.fold_left (fun o l -> walk l o) off (List.rev ls)
          in
          ignore (walk lv 0);
          let stat = List.rev !stat and dyn = List.rev !dyn in
          fun () ->
            let value = Sl.resize (ge ()) total in
            let c =
              { Sl.w = wn; v = Array.make wn 0; u = Array.make wn lmask }
            in
            List.iter
              (fun (nbit, vbit) ->
                c.Sl.v.(nbit) <- value.Sl.v.(vbit);
                c.Sl.u.(nbit) <- value.Sl.u.(vbit))
              stat;
            List.iter
              (fun (gi, vbit) ->
                let iv = gi () in
                for n = 0 to wn - 1 do
                  let en = Sl.eq_const_lanes iv n in
                  if en <> 0 then begin
                    c.Sl.v.(n) <-
                      (c.Sl.v.(n) land lnot en)
                      lor (value.Sl.v.(vbit) land en);
                    c.Sl.u.(n) <-
                      (c.Sl.u.(n) land lnot en)
                      lor (value.Sl.u.(vbit) land en)
                  end
                done)
              dyn;
            c)
      dlist
  in
  fun () ->
    let z = { Sl.w = wn; v = Array.make wn 0; u = Array.make wn lmask } in
    let r =
      List.fold_left (fun acc g -> Sl.resolve acc (g ())) z contribs
    in
    commit_comb st nid ~lo:0 ~w:wn r ~voff:0 st.amask

(* ------------------------------------------------------------------ *)
(* Engine operations                                                  *)
(* ------------------------------------------------------------------ *)

let settle t =
  let st = t.st in
  if st.dirty_all then begin
    st.dirty_all <- false;
    for u = 0 to st.u.Compile.unit_count - 1 do
      enqueue st u
    done
  end;
  (* The scalar budget, scaled by the lane count: a unit re-runs when
     ANY lane's inputs changed, so the worst case is each lane's
     scalar trajectory interleaved. *)
  let budget = 64 * (st.u.Compile.unit_count + 4) * max 1 st.lanes in
  let executed = ref 0 in
  while st.qh <> st.qt do
    let u = st.queue.(st.qh) in
    st.qh <- (st.qh + 1) mod Array.length st.queue;
    Bytes.set st.in_queue u '\000';
    incr executed;
    if !executed > budget then begin
      let name =
        if st.last_changed >= 0 then
          st.d.Elab.nets.(st.last_changed).Elab.name
        else "<unknown>"
      in
      raise (Compile.Comb_loop name)
    end;
    t.units_fn.(u) ()
  done

let clear_overlay st =
  for i = 0 to st.n_touched - 1 do
    Bytes.set st.ov_set st.touched.(i) '\000'
  done;
  st.n_touched <- 0

let step ?(edge = Ast.Posedge) t clock =
  let st = t.st in
  settle t;
  Array.iter
    (fun (edges, fn) ->
      if List.exists (fun (e, id) -> e = edge && id = clock) edges then begin
        clear_overlay st;
        fn ()
      end)
    t.seq_fn;
  clear_overlay st;
  let pending = List.rev st.nba in
  st.nba <- [];
  List.iter (fun commit -> commit ()) pending;
  st.time <- st.time + 1;
  let module Obs = Avp_obs.Obs in
  if Obs.enabled () then begin
    Obs.incr "sim.steps";
    Obs.incr ~by:st.lanes "sim.lanes"
  end;
  settle t

let planes_of st id bv =
  let w = st.widths.(id) in
  let bv = if Bv.width bv = w then bv else Bv.resize bv w in
  Sl.broadcast bv

let poke_id ?mask t id bv =
  let st = t.st in
  let mask = Option.value ~default:st.amask mask in
  let en = mask land lnot st.forced.(id) land lnot st.frozen land st.amask in
  if en <> 0 then begin
    let s = planes_of st id bv in
    let nv = st.nv.(id) and nu = st.nu.(id) in
    let changed = ref false in
    for j = 0 to st.widths.(id) - 1 do
      let v' = (nv.(j) land lnot en) lor (s.Sl.v.(j) land en)
      and u' = (nu.(j) land lnot en) lor (s.Sl.u.(j) land en) in
      if v' <> nv.(j) || u' <> nu.(j) then begin
        nv.(j) <- v';
        nu.(j) <- u';
        changed := true
      end
    done;
    if !changed then mark_readers st id
  end

let set_id ?mask t id bv =
  poke_id ?mask t id bv;
  settle t

(* Change detection matters here: the vector replays re-force every
   choice net every cycle, and most cycles repeat the previous value —
   skipping the readers mark when nothing changed keeps the settle
   worklist at the nets that actually toggled.  (Newly forcing an
   unchanged value needs no mark either: downstream values are already
   the fixpoint, and the forced bit only masks future commits.) *)
let force_id ?mask t id bv =
  let st = t.st in
  let mask = Option.value ~default:st.amask mask in
  let en = mask land st.amask land lnot st.frozen in
  if en <> 0 then begin
    let w = st.widths.(id) in
    let bv = if Bv.width bv = w then bv else Bv.resize bv w in
    let nv = st.nv.(id) and nu = st.nu.(id) in
    let changed = ref false in
    (match Bv.planes bv with
     | Some (pv, pu) ->
       for j = 0 to w - 1 do
         let v' =
           (nv.(j) land lnot en) lor (if (pv lsr j) land 1 = 1 then en else 0)
         and u' =
           (nu.(j) land lnot en) lor (if (pu lsr j) land 1 = 1 then en else 0)
         in
         if v' <> nv.(j) || u' <> nu.(j) then begin
           nv.(j) <- v';
           nu.(j) <- u';
           changed := true
         end
       done
     | None ->
       let s = Sl.broadcast bv in
       for j = 0 to w - 1 do
         let v' = (nv.(j) land lnot en) lor (s.Sl.v.(j) land en)
         and u' = (nu.(j) land lnot en) lor (s.Sl.u.(j) land en) in
         if v' <> nv.(j) || u' <> nu.(j) then begin
           nv.(j) <- v';
           nu.(j) <- u';
           changed := true
         end
       done);
    st.forced.(id) <- st.forced.(id) lor en;
    if !changed then mark_readers st id
  end

(* Pin a different value per lane with one readers mark: the batched
   vector drivers issue one force per (lane, net) pair — hundreds per
   cycle at 62 lanes — so the per-call path (broadcast allocation plus
   a mark each) would dominate the replay.  Lanes at [None] are left
   untouched. *)
let force_lanes t id (values : Bv.t option array) =
  let st = t.st in
  let w = st.widths.(id) in
  let nv = st.nv.(id) and nu = st.nu.(id) in
  let frz = st.frozen in
  let en = ref 0 in
  let changed = ref false in
  Array.iteri
    (fun l bv ->
      match bv with
      | None -> ()
      | Some _ when frz land (1 lsl l) <> 0 -> ()
      | Some bv ->
        let bv = if Bv.width bv = w then bv else Bv.resize bv w in
        let bit = 1 lsl l in
        en := !en lor bit;
        (match Bv.planes bv with
         | Some (pv, pu) ->
           for j = 0 to w - 1 do
             let v' = (nv.(j) land lnot bit) lor (((pv lsr j) land 1) * bit)
             and u' = (nu.(j) land lnot bit) lor (((pu lsr j) land 1) * bit) in
             if v' <> nv.(j) || u' <> nu.(j) then begin
               nv.(j) <- v';
               nu.(j) <- u';
               changed := true
             end
           done
         | None ->
           (* Wider than the packed planes: transpose bit by bit. *)
           let s = Sl.broadcast bv in
           for j = 0 to w - 1 do
             let v' = (nv.(j) land lnot bit) lor (s.Sl.v.(j) land bit)
             and u' = (nu.(j) land lnot bit) lor (s.Sl.u.(j) land bit) in
             if v' <> nv.(j) || u' <> nu.(j) then begin
               nv.(j) <- v';
               nu.(j) <- u';
               changed := true
             end
           done))
    values;
  let en = !en land st.amask in
  if en <> 0 then begin
    st.forced.(id) <- st.forced.(id) lor en;
    if !changed then mark_readers st id
  end

let release_id ?mask t id =
  let st = t.st in
  let mask = Option.value ~default:st.amask mask in
  st.forced.(id) <- st.forced.(id) land lnot mask;
  enqueue st id;
  mark_readers st id

let forced_mask t id = t.st.forced.(id)

let get_lane t ~lane id =
  let st = t.st in
  Sl.lane { Sl.w = st.widths.(id); v = st.nv.(id); u = st.nu.(id) } lane

(* Per-lane divergence against a predicted value: the first mask has
   the lanes whose value cannot encode an int (an undefined bit, or a
   net wider than the packed limit — [Bv.to_int]'s wide behaviour);
   the second the defined lanes whose value differs. *)
let check_net ?mask t id ~predicted =
  let st = t.st in
  let mask = Option.value ~default:st.amask mask land st.amask in
  let w = st.widths.(id) in
  if w > Bv.packed_width_limit then (mask, 0)
  else begin
    let nv = st.nv.(id) and nu = st.nu.(id) in
    let bad = ref 0 and neq = ref 0 in
    for j = 0 to w - 1 do
      bad := !bad lor nu.(j);
      let p = if (predicted lsr j) land 1 = 1 then lmask else 0 in
      neq := !neq lor (nv.(j) lxor p)
    done;
    let bad = !bad land mask in
    (bad, !neq land mask land lnot bad)
  end

let check_net_lanes ?mask t id ~(predicted : int array) =
  let st = t.st in
  let mask = Option.value ~default:st.amask mask land st.amask in
  let w = st.widths.(id) in
  if w > Bv.packed_width_limit then (mask, 0)
  else begin
    let nv = st.nv.(id) and nu = st.nu.(id) in
    let bad = ref 0 and neq = ref 0 in
    for j = 0 to w - 1 do
      bad := !bad lor nu.(j);
      let p = ref 0 in
      Array.iteri
        (fun l pv -> if (pv lsr j) land 1 = 1 then p := !p lor (1 lsl l))
        predicted;
      neq := !neq lor (nv.(j) lxor !p)
    done;
    let bad = !bad land mask in
    (bad, !neq land mask land lnot bad)
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let reinit t =
  let st = t.st in
  Array.iteri
    (fun id net ->
      let v, u =
        match net.Elab.kind with
        | Ast.Reg -> (lmask, lmask) (* all X *)
        | Ast.Wire -> (0, lmask) (* all Z *)
      in
      Array.fill st.nv.(id) 0 st.widths.(id) v;
      Array.fill st.nu.(id) 0 st.widths.(id) u;
      st.forced.(id) <- 0)
    st.d.Elab.nets;
  Bytes.fill st.ov_set 0 (Bytes.length st.ov_set) '\000';
  st.n_touched <- 0;
  st.nba <- [];
  st.qh <- 0;
  st.qt <- 0;
  Bytes.fill st.in_queue 0 (Bytes.length st.in_queue) '\000';
  st.dirty_all <- true;
  st.frozen <- 0;
  st.time <- 0;
  st.last_changed <- -1

(* Retire lanes from the kernel: every write path masks out frozen
   lanes, so a frozen lane's nets stop changing and its downstream
   units drop out of the dirty set — a word pass whose dead lanes are
   frozen costs only the union of the LIVE lanes' activity.  Frozen
   lanes keep their last values (stale, never read back by the
   campaign) until {!reinit} clears the mask. *)
let freeze t ~mask =
  let st = t.st in
  st.frozen <- st.frozen lor (mask land st.amask)

let frozen_mask t = t.st.frozen

let build ?u ~lanes (d : Elab.t) (procs : xp array) =
  let u = match u with Some u -> u | None -> Compile.units d in
  let n = Array.length d.Elab.nets in
  let widths = Array.map (fun (net : Elab.enet) -> net.Elab.width) d.Elab.nets in
  let st =
    {
      d;
      u;
      lanes;
      amask = (1 lsl lanes) - 1;
      widths;
      nv = Array.init n (fun i -> Array.make widths.(i) 0);
      nu = Array.init n (fun i -> Array.make widths.(i) 0);
      forced = Array.make n 0;
      ov_v = Array.init n (fun i -> Array.make widths.(i) 0);
      ov_u = Array.init n (fun i -> Array.make widths.(i) 0);
      ov_set = Bytes.make n '\000';
      touched = Array.make (max n 1) 0;
      n_touched = 0;
      nba = [];
      queue = Array.make (u.Compile.unit_count + 1) 0;
      qh = 0;
      qt = 0;
      in_queue = Bytes.make (max u.Compile.unit_count 1) '\000';
      dirty_all = true;
      frozen = 0;
      time = 0;
      last_changed = -1;
    }
  in
  (* Driver lists per net, in the same order [Compile.units] builds
     them, but over the schemata IR. *)
  let drivers = Array.make n [] in
  Array.iter
    (fun p ->
      match p with
      | XAssign (lv, e) ->
        List.iter
          (fun id -> drivers.(id) <- (lv, e) :: drivers.(id))
          (Elab.lv_nets lv)
      | XComb _ | XSeq _ -> ())
    procs;
  Array.iteri (fun i l -> drivers.(i) <- List.rev l) drivers;
  let combs =
    Array.of_list
      (Array.to_list procs
      |> List.filter_map (function XComb s -> Some s | _ -> None))
  in
  let seqs =
    Array.to_list procs
    |> List.filter_map (function XSeq (e, s) -> Some (e, s) | _ -> None)
    |> Array.of_list
  in
  (* Sanity: the IR mirrors the base analysis unit-for-unit. *)
  assert (Array.length combs = Array.length u.Compile.comb);
  assert (Array.length seqs = Array.length u.Compile.seq);
  Array.iter (fun dl -> List.iter (fun (_, e) -> check_e d e) dl) drivers;
  Array.iter (check_s d) combs;
  Array.iter (fun (_, s) -> check_s d s) seqs;
  let units_fn =
    Array.init u.Compile.unit_count (fun uid ->
        if uid < n then
          match drivers.(uid) with
          | [] -> fun () -> ()
          | dl -> cdriver st uid dl
        else
          let body = cstmt st ~seq:false combs.(uid - n) in
          fun () -> body (st.amask land lnot st.frozen))
  in
  let seq_fn =
    Array.map
      (fun (edges, s) ->
        let body = cstmt st ~seq:true s in
        (edges, fun () -> body (st.amask land lnot st.frozen)))
      seqs
  in
  let t = { st; units_fn; seq_fn } in
  reinit t;
  t

let create ?u ?facts ~lanes (d : Elab.t) =
  if lanes < 1 || lanes > Sl.lanes_limit then
    invalid_arg "Sliced.create: lane count out of range";
  (* Folding rewrites the processes' reads, so a caller's pre-facts
     static analysis cannot be reused. *)
  let d, u =
    match facts with
    | None -> (d, u)
    | Some fx -> (Compile.specialize fx d, None)
  in
  let procs = Array.map inj_p d.Elab.processes in
  match build ?u ~lanes d procs with
  | t -> Some t
  | exception Unsupported -> None

let create_schemata ?u ~base (mutants : Elab.t array) =
  let lanes = Array.length mutants in
  if lanes < 1 || lanes > Sl.lanes_limit then
    invalid_arg "Sliced.create_schemata: lane count out of range";
  let procs = Array.map inj_p base.Elab.processes in
  let scheduled =
    Array.mapi
      (fun i md -> merge_mutant ~mask:(1 lsl i) procs base md)
      mutants
  in
  match build ?u ~lanes base procs with
  | t -> Some (t, scheduled)
  | exception Unsupported -> None
