open Avp_pp

type method_result = {
  detected : bool;
  runs : int;
  instructions : int;
}

type bug_row = {
  bug : Bugs.id;
  generated : method_result;
  random : method_result;
  directed : method_result;
  fuzz : method_result option;
      (** coverage-guided fuzz corpus, when one was supplied *)
}

let run_stimulus ?config ?(max_cycles = 20_000) (stim : Drive.stimulus) =
  Compare.run ?config ~max_cycles ~ready:stim.Drive.ready
    ~mem_init:stim.Drive.mem_init ~program:stim.Drive.program
    ~inbox:stim.Drive.inbox ()

let detect_with ?max_cycles ?(domains = 1) ?progress config stimuli =
  let tick () =
    match progress with
    | Some p -> Avp_obs.Progress.tick p
    | None -> ()
  in
  let stims = Array.of_list stimuli in
  let n = Array.length stims in
  let domains = max 1 (min domains (max 1 n)) in
  if domains = 1 then begin
    let rec go runs instructions = function
      | [] -> { detected = false; runs; instructions }
      | stim :: rest ->
        let instructions =
          instructions + Array.length stim.Drive.program - 1
        in
        tick ();
        (match run_stimulus ~config ?max_cycles stim with
         | Compare.Match -> go (runs + 1) instructions rest
         | Compare.Mismatch _ ->
           { detected = true; runs = runs + 1; instructions })
    in
    go 0 0 stimuli
  end
  else begin
    (* Stimuli sharded round-robin over domains, each run on its own
       pair of simulators inside [Compare.run].  [first_hit] lets
       workers skip stimuli that can no longer be the answer: only
       indices above an already-detected one are skipped, so the merge
       below still reports exactly what the sequential scan would. *)
    let detected = Array.make n false in
    let first_hit = Atomic.make max_int in
    Avp_enum.Pool.with_pool ~domains (fun pool ->
        Avp_enum.Pool.run pool (fun slot ->
            let i = ref slot in
            while !i < n do
              if !i < Atomic.get first_hit then begin
                tick ();
                (match run_stimulus ~config ?max_cycles stims.(!i) with
                 | Compare.Match -> ()
                 | Compare.Mismatch _ ->
                   detected.(!i) <- true;
                   let rec lower () =
                     let cur = Atomic.get first_hit in
                     if
                       !i < cur
                       && not (Atomic.compare_and_set first_hit cur !i)
                     then lower ()
                   in
                   lower ())
              end;
              i := !i + domains
            done));
    (* Deterministic merge: first detecting stimulus in list order. *)
    let rec scan i runs instructions =
      if i = n then { detected = false; runs; instructions }
      else
        let instructions =
          instructions + Array.length stims.(i).Drive.program - 1
        in
        if detected.(i) then { detected = true; runs = runs + 1; instructions }
        else scan (i + 1) (runs + 1) instructions
    in
    scan 0 0 0
  end

let table_2_1 ?(seed = 1) ?max_cycles ?domains ?progress ?fuzz ~cfg ~graph
    ~tours () =
  let generated_stimuli = Drive.of_traces ~seed cfg graph tours in
  let generated_budget =
    List.fold_left
      (fun n s -> n + Array.length s.Drive.program - 1)
      0 generated_stimuli
  in
  (* Random programs of ~200 instructions each, with the same total
     instruction budget as the generated vectors. *)
  let random_stimuli =
    let per_program = 200 in
    let count = max 1 (generated_budget / per_program) in
    List.init count (fun i ->
        Baselines.random_stimulus ~seed:(seed + i) ~instructions:per_program)
  in
  let directed_stimuli = List.map snd (Baselines.directed_suite ()) in
  List.map
    (fun bug ->
      let config = { Rtl.default_config with Rtl.bugs = Bugs.only bug } in
      let row =
        {
          bug;
          generated =
            detect_with ?max_cycles ?domains ?progress config
              generated_stimuli;
          random =
            detect_with ?max_cycles ?domains ?progress config random_stimuli;
          directed =
            detect_with ?max_cycles ?domains ?progress config
              directed_stimuli;
          fuzz =
            Option.map
              (fun stimuli ->
                detect_with ?max_cycles ?domains ?progress config stimuli)
              fuzz;
        }
      in
      if Avp_obs.Obs.enabled () then
        Avp_obs.Obs.instant ~cat:"validate" "validate.bug"
          ~args:
            ([
               ("bug", Avp_obs.Obs.Str (Format.asprintf "%a" Bugs.pp_id bug));
               ("generated", Avp_obs.Obs.Bool row.generated.detected);
               ("random", Avp_obs.Obs.Bool row.random.detected);
               ("directed", Avp_obs.Obs.Bool row.directed.detected);
             ]
            @
            match row.fuzz with
            | Some f -> [ ("fuzz", Avp_obs.Obs.Bool f.detected) ]
            | None -> []);
      row)
    Bugs.all_ids

let pp_result ppf r =
  if r.detected then
    Format.fprintf ppf "found (run %d, %d instr)" r.runs r.instructions
  else Format.fprintf ppf "NOT FOUND (%d runs, %d instr)" r.runs
         r.instructions

let pp_rows ppf rows =
  List.iter
    (fun row ->
      Format.fprintf ppf "%a: generated %a | random %a | directed %a"
        Bugs.pp_id row.bug pp_result row.generated pp_result row.random
        pp_result row.directed;
      (match row.fuzz with
       | Some f -> Format.fprintf ppf " | fuzz %a" pp_result f
       | None -> ());
      Format.fprintf ppf "@.")
    rows
