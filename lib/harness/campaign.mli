(** The Table 2.1 experiment: for each injected Protocol Processor
    bug, does each test-generation method expose it within a budget?

    The paper's finding is that the generated vectors caught bugs
    "not (yet) found by other methods": all the vectors found by other
    methods were also found, and the six multiple-event bugs fell only
    to the systematic tours. *)

type method_result = {
  detected : bool;
  runs : int;  (** traces / programs executed until detection (or all) *)
  instructions : int;  (** instructions simulated until detection *)
}

type bug_row = {
  bug : Avp_pp.Bugs.id;
  generated : method_result;
  random : method_result;
  directed : method_result;
  fuzz : method_result option;
      (** coverage-guided fuzz corpus, when one was supplied *)
}

val run_stimulus :
  ?config:Avp_pp.Rtl.config ->
  ?max_cycles:int ->
  Drive.stimulus ->
  Compare.verdict
(** One stimulus through RTL-vs-spec comparison. *)

val detect_with :
  ?max_cycles:int ->
  ?domains:int ->
  ?progress:Avp_obs.Progress.t ->
  Avp_pp.Rtl.config ->
  Drive.stimulus list ->
  method_result
(** Run stimuli in list order until one exposes a mismatch.
    [?domains] (default 1) fans the runs out over that many OCaml
    domains, sharded round-robin, each on its own simulator pair; the
    merge still reports the first detecting stimulus in list order,
    so the result is identical to the sequential scan. *)

val table_2_1 :
  ?seed:int ->
  ?max_cycles:int ->
  ?domains:int ->
  ?progress:Avp_obs.Progress.t ->
  ?fuzz:Drive.stimulus list ->
  cfg:Avp_pp.Control_model.cfg ->
  graph:Avp_enum.State_graph.t ->
  tours:Avp_tour.Tour_gen.t ->
  unit ->
  bug_row list
(** Generated vectors come from the tours; the random method gets the
    same instruction budget as the generated vectors consumed; the
    directed method runs the fixed hand-written suite.  [?fuzz]
    supplies a fourth stimulus set — a coverage-guided fuzz corpus
    (e.g. [Avp_fuzz.Isa_fuzz.stimuli]) — scored the same way and
    reported per row in [fuzz]. *)

val pp_rows : Format.formatter -> bug_row list -> unit
