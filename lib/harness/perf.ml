open Avp_pp
module Obs = Avp_obs.Obs

type report = {
  cycles : int;
  instructions : int;
  cpi : float;
  elapsed_s : float;
}

(* Every measurement runs under one {!Obs.Timer} — the same clock the
   tracing spans and the bench snapshots use, so wall-clock numbers
   from different tools are directly comparable. *)
let measure ?config ?(max_cycles = 50_000) (stim : Drive.stimulus) =
  let timer = Obs.Timer.start () in
  let rtl =
    Rtl.create ?config ~mem_init:stim.Drive.mem_init
      ~program:stim.Drive.program ~inbox:stim.Drive.inbox ()
  in
  Rtl.run ~max_cycles ~ready:stim.Drive.ready rtl;
  let instructions = Rtl.instructions_retired rtl in
  let elapsed_s = Obs.Timer.elapsed_s timer in
  if Obs.enabled () then
    Obs.complete ~cat:"perf" "perf.measure" ~dur_s:elapsed_s
      ~args:
        [
          ("cycles", Obs.Int (Rtl.cycle rtl));
          ("instructions", Obs.Int instructions);
        ];
  {
    cycles = Rtl.cycle rtl;
    instructions;
    cpi =
      (if instructions = 0 then nan
       else float_of_int (Rtl.cycle rtl) /. float_of_int instructions);
    elapsed_s;
  }

type verdict = {
  reference : report;
  dut : report;
  slowdown : float;
  results_match : bool;
}

let compare ~reference ~dut ?(max_cycles = 50_000) (stim : Drive.stimulus) =
  let ref_report = measure ~config:reference ~max_cycles stim in
  let dut_report = measure ~config:dut ~max_cycles stim in
  let results_match =
    match
      Compare.run ~config:dut ~max_cycles ~ready:stim.Drive.ready
        ~mem_init:stim.Drive.mem_init ~program:stim.Drive.program
        ~inbox:stim.Drive.inbox ()
    with
    | Compare.Match -> true
    | Compare.Mismatch _ -> false
  in
  {
    reference = ref_report;
    dut = dut_report;
    slowdown = dut_report.cpi /. ref_report.cpi;
    results_match;
  }

let pp_verdict ppf v =
  Format.fprintf ppf
    "reference %d cycles (cpi %.2f), dut %d cycles (cpi %.2f), slowdown \
     %.2fx; results %s"
    v.reference.cycles v.reference.cpi v.dut.cycles v.dut.cpi v.slowdown
    (if v.results_match then "match (performance bug invisible to \
                              result comparison)"
     else "mismatch")
