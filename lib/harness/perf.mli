(** Cycle-accounting comparison — the check the paper's Section 4 says
    result comparison cannot do.

    "The only way to detect such [performance] bugs with our result
    comparison is to make the specification model cycle-accurate."
    Rather than duplicating the RTL as a second cycle-accurate model
    (which the paper warns breeds common-mode errors), this harness
    compares the device under test against a {e reference
    configuration} of the same RTL: same stimulus, same results, but
    any systematic cycle inflation is flagged. *)

type report = {
  cycles : int;
  instructions : int;
  cpi : float;
  elapsed_s : float;  (** wall-clock time of the run, {!Avp_obs.Obs.Timer} *)
}

val measure :
  ?config:Avp_pp.Rtl.config -> ?max_cycles:int -> Drive.stimulus -> report
(** Runs under an {!Avp_obs.Obs.Timer} (the telemetry clock) and, when
    a tracer is installed, emits a [perf.measure] span. *)

type verdict = {
  reference : report;
  dut : report;
  slowdown : float;  (** dut cpi / reference cpi *)
  results_match : bool;  (** the Section 4 blind spot: often [true] *)
}

val compare :
  reference:Avp_pp.Rtl.config ->
  dut:Avp_pp.Rtl.config ->
  ?max_cycles:int ->
  Drive.stimulus ->
  verdict

val pp_verdict : Format.formatter -> verdict -> unit
