open Avp_fsm

type outcome = {
  arcs_toured : int;
  detected : bool;
}

(* A machine is a next-state table over the input alphabet plus a
   Moore output per state. *)
type machine = {
  next : int -> int -> int;  (* state -> input -> state *)
  output : int -> int;
}

let model_of_machine name ~states ~inputs (m : machine) =
  Model.create ~name
    ~state_vars:[ Model.var "s" (Array.init states string_of_int) ]
    ~choice_vars:[ Model.var "in" (Array.init inputs string_of_int) ]
    ~reset:[ 0 ]
    ~next:(fun st ch -> [| m.next st.(0) ch.(0) |])
    ()

(* Enumerate the implementation, tour it, replay the tour's condition
   sequence on both machines from reset, compare outputs. *)
let validate ~all_conditions ~states ~inputs ~spec ~impl =
  let model = model_of_machine "impl" ~states ~inputs impl in
  let graph = Avp_enum.State_graph.enumerate ~all_conditions model in
  let tours = Avp_tour.Tour_gen.generate graph in
  let arcs = ref 0 in
  let detected = ref false in
  Array.iter
    (fun trace ->
      let s_spec = ref 0 and s_impl = ref 0 in
      Array.iter
        (fun (step : Avp_tour.Tour_gen.step) ->
          incr arcs;
          let input =
            (Model.choice_of_index model step.Avp_tour.Tour_gen.choice).(0)
          in
          s_spec := spec.next !s_spec input;
          s_impl := impl.next !s_impl input;
          if spec.output !s_spec <> impl.output !s_impl then detected := true)
        trace)
    tours.Avp_tour.Tour_gen.traces;
  { arcs_toured = !arcs; detected = !detected }

(* Figure 4.1 — implementation with more behaviours.  States A=0, B=1
   and (impl only) C=2; inputs a=0, b=1, c=2.  The specification
   ignores [c]; the implementation erroneously transitions B --c--> C,
   where the output differs. *)
let figure_4_1 () =
  let spec =
    {
      next =
        (fun s i ->
          match s, i with
          | 0, 0 -> 1
          | 1, 1 -> 0
          | s, _ -> s);
      output = (fun s -> s);
    }
  in
  let impl =
    {
      next =
        (fun s i ->
          match s, i with
          | 0, 0 -> 1
          | 1, 1 -> 0
          | 1, 2 -> 2  (* the extra erroneous behaviour *)
          | 2, _ -> 0
          | s, _ -> s);
      output = (fun s -> s);
    }
  in
  validate ~all_conditions:false ~states:3 ~inputs:3 ~spec ~impl

(* Figure 4.2 — implementation with fewer behaviours.  The spec sends
   a=0 to state B=1 and c=2 to state C=2; the implementation performs
   the same transition (to B) for both inputs.  b=1 returns to A. *)
let figure_4_2 ~all_conditions =
  let spec =
    {
      next =
        (fun s i ->
          match s, i with
          | 0, 0 -> 1
          | 0, 2 -> 2
          | (1 | 2), 1 -> 0
          | s, _ -> s);
      output = (fun s -> s);
    }
  in
  let impl =
    {
      next =
        (fun s i ->
          match s, i with
          | 0, 0 -> 1
          | 0, 2 -> 1  (* erroneously the same transition as input a *)
          | (1 | 2), 1 -> 0
          | s, _ -> s);
      output = (fun s -> s);
    }
  in
  validate ~all_conditions ~states:3 ~inputs:3 ~spec ~impl
