open Avp_pp

(* All counting delegates to the generic {!Avp_obs.Coverage} counter;
   this module only supplies the RTL-specific projection — driving
   the pipeline under a stimulus and mapping each cycle's control
   observation onto the enumerated abstract state space. *)

type t = Avp_obs.Coverage.summary = {
  states_seen : int;
  states_total : int;
  arcs_seen : int;
  arcs_total : int;
  unmapped : int;
}

let state_fraction = Avp_obs.Coverage.state_fraction
let arc_fraction = Avp_obs.Coverage.arc_fraction
let pp = Avp_obs.Coverage.pp

type accumulator = {
  cfg : Control_model.cfg;
  index : int array -> int option;
  counter : Avp_obs.Coverage.t;
}

let create cfg graph =
  {
    cfg;
    index = Avp_enum.State_graph.make_index graph;
    counter = Avp_obs.Coverage.of_graph graph.Avp_enum.State_graph.adj;
  }

let run ?config ?(max_cycles = 20_000) acc (stim : Drive.stimulus) =
  let rtl =
    Rtl.create ?config ~mem_init:stim.Drive.mem_init
      ~program:stim.Drive.program ~inbox:stim.Drive.inbox ()
  in
  let prev = ref None in
  let record () =
    let v = Control_model.valuation_of_obs acc.cfg (Rtl.observe rtl) in
    match acc.index v with
    | None ->
      Avp_obs.Coverage.mark_unmapped acc.counter;
      prev := None
    | Some id ->
      Avp_obs.Coverage.mark_state acc.counter id;
      (match !prev with
       | Some p ->
         (* mark_arc only counts pairs the graph declares, so a
            non-arc (src, dst) observation never inflates coverage. *)
         Avp_obs.Coverage.mark_arc acc.counter ~src:p ~dst:id
       | None -> ());
      prev := Some id
  in
  let rec loop () =
    if (not (Rtl.halted rtl)) && Rtl.cycle rtl < max_cycles then begin
      let ib, ob = stim.Drive.ready (Rtl.cycle rtl) in
      Rtl.step rtl ~inbox_ready:ib ~outbox_ready:ob;
      record ();
      loop ()
    end
  in
  loop ()

let counts acc = Avp_obs.Coverage.counts acc.counter

let run_delta ?config ?max_cycles acc stim =
  let before = counts acc in
  run ?config ?max_cycles acc stim;
  Avp_obs.Coverage.delta ~before ~after:(counts acc)

let result acc = Avp_obs.Coverage.summary acc.counter
