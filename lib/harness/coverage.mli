(** Arc coverage measurement.

    Runs the RTL under a stimulus while projecting each cycle's
    control observation onto the abstract state space, and counts
    which arcs of the enumerated state graph the implementation
    actually traversed.  This is the feedback signal of
    coverage-driven validation: the generated vectors aim to push it
    to 100%, random vectors plateau well below — the mutation
    campaign's per-mutant [missed_by] field names exactly which
    mutants hide in that plateau, and the coverage-guided fuzzer
    ({!Avp_fuzz.Loop} and {!Isa_fuzz}) uses the incremental
    {!run_delta} form of this signal to climb out of it.

    Counting itself lives in the generic {!Avp_obs.Coverage}; this
    module supplies the RTL observation projection and re-exports the
    summary so its numbers are the same ones the unified reports
    aggregate. *)

type t = Avp_obs.Coverage.summary = {
  states_seen : int;
  states_total : int;
  arcs_seen : int;
  arcs_total : int;
  unmapped : int;
      (** cycles whose observation is not a reachable abstract state —
          abstraction mismatch, expected to be rare *)
}

val state_fraction : t -> float
val arc_fraction : t -> float
val pp : Format.formatter -> t -> unit

type accumulator

val create : Avp_pp.Control_model.cfg -> Avp_enum.State_graph.t -> accumulator

val run :
  ?config:Avp_pp.Rtl.config ->
  ?max_cycles:int ->
  accumulator ->
  Drive.stimulus ->
  unit
(** Accumulates coverage from one stimulus run (coverage composes
    across runs, like the union of tour traces). *)

val counts : accumulator -> Avp_obs.Coverage.counts
(** O(1) snapshot of the running counters — take one before and one
    after a run to get an incremental coverage delta. *)

val run_delta :
  ?config:Avp_pp.Rtl.config ->
  ?max_cycles:int ->
  accumulator ->
  Drive.stimulus ->
  Avp_obs.Coverage.counts
(** {!run} plus the counter movement the run caused
    ({!Avp_obs.Coverage.delta} of the before/after snapshots) — the
    keep-or-discard feedback signal of the coverage-guided fuzzing
    loop. *)

val result : accumulator -> t
