(** Synchronous FSM models in the style of Synchronous Murphi.

    A model has typed {e state variables} (updated only by the
    implicit clock) and {e choice variables} — the nondeterministic
    abstract blocks of the paper, which "try every combination of
    values" during state enumeration.  The transition function is a
    pure function of a state valuation and a choice valuation.

    Valuations are [int array]s indexed by variable position, each
    entry in [0, card var - 1]. *)

type var = {
  name : string;
  values : string array;  (** value names; cardinality is the length *)
}

val var : string -> string array -> var

val bool_var : string -> var
(** A variable with values ["0"] and ["1"]. *)

val card : var -> int

val bits_for : int -> int
(** Bits needed to encode a domain of the given cardinality. *)

type t = {
  model_name : string;
  state_vars : var array;
  choice_vars : var array;
  reset : int array;
  next : int array -> int array -> int array;
      (** [next state choices] must be pure and total *)
  next_into : int array -> int array -> int array -> unit;
      (** [next_into state choices dst] writes the successor valuation
          into [dst] (length = number of state variables) without
          allocating — the state-enumeration hot path.  Semantically
          identical to [next]; when [parallel_safe] it must tolerate
          concurrent calls from multiple domains. *)
  parallel_safe : bool;
      (** Whether [next]/[next_into] may be called concurrently from
          several domains.  False for transition functions that close
          over shared mutable machinery (e.g. an HDL simulator);
          enumeration then falls back to a single domain. *)
}

val create :
  ?next_into:(int array -> int array -> int array -> unit) ->
  ?parallel_safe:bool ->
  name:string ->
  state_vars:var list ->
  choice_vars:var list ->
  reset:int list ->
  next:(int array -> int array -> int array) ->
  unit ->
  t
(** [next_into] defaults to calling [next] and blitting the result;
    [parallel_safe] defaults to true (a pure [next]). *)

val state_bits : t -> int
(** Sum of per-variable encoding bits — the paper's "bits per state". *)

val num_states_upper_bound : t -> float
(** Product of state-variable cardinalities (2^bits in the paper's
    framing). *)

val num_choices : t -> int
(** Number of choice combinations permuted per state. *)

val choice_of_index : t -> int -> int array
(** Decode a flat choice index (row-major over [choice_vars]). *)

val index_of_choice : t -> int array -> int

val pp_state : t -> Format.formatter -> int array -> unit
(** [var=value] pairs, comma-separated. *)

val pp_choice : t -> Format.formatter -> int array -> unit

val validate : t -> (unit, string) result
(** Checks domain sizes, reset validity, and that [next] stays in
    range on the reset state for every choice. *)

(** Imperative builder for models made of small interlocking FSMs.

    Declare variables, then provide a [step] function that reads
    current values and assigns next values; unassigned state variables
    hold their current value, which keeps sub-FSM definitions local. *)
module Builder : sig
  type b
  type svar
  type cvar

  val create : string -> b
  val state : b -> string -> ?init:int -> string array -> svar
  val state_bool : b -> string -> ?init:int -> unit -> svar
  val choice : b -> string -> string array -> cvar
  val choice_bool : b -> string -> cvar

  type ctx

  val get : ctx -> svar -> int
  val chosen : ctx -> cvar -> int
  val set : ctx -> svar -> int -> unit
  (** Assign the next-cycle value.  Assigning twice in one step is an
      error, mirroring single-driver rules. *)

  val build : b -> step:(ctx -> unit) -> t
end
