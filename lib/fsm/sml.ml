exception Error of string * int

let fail line fmt = Format.kasprintf (fun m -> raise (Error (m, line))) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Tmodel | Tstate | Tchoice | Tupdate | Tend
  | Tif | Tthen | Telsif | Telse
  | Tbool | Ttrue | Tfalse
  | Tident of string
  | Tint of int
  | Tcolon | Tassign | Tsemi | Tcomma | Tlbrace | Trbrace | Tlparen
  | Trparen | Tdotdot | Teq | Tneq | Tle | Tge | Tlt | Tgt | Tamp | Tbar
  | Tbang | Tplus | Tminus | Tstar | Tquestion | Teq1
  | Teof

let token_name = function
  | Tmodel -> "model" | Tstate -> "state" | Tchoice -> "choice"
  | Tupdate -> "update" | Tend -> "end" | Tif -> "if" | Tthen -> "then"
  | Telsif -> "elsif" | Telse -> "else" | Tbool -> "bool"
  | Ttrue -> "true" | Tfalse -> "false"
  | Tident s -> s
  | Tint n -> string_of_int n
  | Tcolon -> ":" | Tassign -> ":=" | Tsemi -> ";" | Tcomma -> ","
  | Tlbrace -> "{" | Trbrace -> "}" | Tlparen -> "(" | Trparen -> ")"
  | Tdotdot -> ".." | Teq -> "==" | Tneq -> "!=" | Tle -> "<=" | Tge -> ">="
  | Tlt -> "<" | Tgt -> ">" | Tamp -> "&" | Tbar -> "|" | Tbang -> "!"
  | Tplus -> "+" | Tminus -> "-" | Tstar -> "*" | Tquestion -> "?"
  | Teq1 -> "=" | Teof -> "<eof>"

let keyword = function
  | "model" -> Some Tmodel
  | "state" -> Some Tstate
  | "choice" -> Some Tchoice
  | "update" -> Some Tupdate
  | "end" -> Some Tend
  | "if" -> Some Tif
  | "then" -> Some Tthen
  | "elsif" -> Some Telsif
  | "else" -> Some Telse
  | "bool" -> Some Tbool
  | "true" -> Some Ttrue
  | "false" -> Some Tfalse
  | _ -> None

let tokenize src =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit t = toks := (t, !line) :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '-' && peek 1 = Some '-' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !pos in
      while
        !pos < n
        && (let d = src.[!pos] in
            (d >= 'a' && d <= 'z')
            || (d >= 'A' && d <= 'Z')
            || (d >= '0' && d <= '9')
            || d = '_')
      do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      emit (match keyword word with Some k -> k | None -> Tident word)
    end
    else if c >= '0' && c <= '9' then begin
      let start = !pos in
      while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
        incr pos
      done;
      emit (Tint (int_of_string (String.sub src start (!pos - start))))
    end
    else begin
      let two t =
        emit t;
        pos := !pos + 2
      in
      let one t =
        emit t;
        incr pos
      in
      match c, peek 1 with
      | ':', Some '=' -> two Tassign
      | ':', _ -> one Tcolon
      | '.', Some '.' -> two Tdotdot
      | '=', Some '=' -> two Teq
      | '=', _ -> one Teq1
      | '!', Some '=' -> two Tneq
      | '!', _ -> one Tbang
      | '<', Some '=' -> two Tle
      | '<', _ -> one Tlt
      | '>', Some '=' -> two Tge
      | '>', _ -> one Tgt
      | ';', _ -> one Tsemi
      | ',', _ -> one Tcomma
      | '{', _ -> one Tlbrace
      | '}', _ -> one Trbrace
      | '(', _ -> one Tlparen
      | ')', _ -> one Trparen
      | '&', _ -> one Tamp
      | '|', _ -> one Tbar
      | '+', _ -> one Tplus
      | '-', _ -> one Tminus
      | '*', _ -> one Tstar
      | '?', _ -> one Tquestion
      | c, _ -> fail !line "unexpected character %C" c
    end
  done;
  emit Teof;
  Array.of_list (List.rev !toks)

(* ------------------------------------------------------------------ *)
(* AST                                                                *)
(* ------------------------------------------------------------------ *)

type ty = Bool | Range of int * int | Enum of string array

type expr =
  | Lit of int
  | Ref of string * int  (* name, line *)
  | Unop of [ `Not | `Neg ] * expr
  | Binop of
      [ `And | `Or | `Eq | `Neq | `Lt | `Le | `Gt | `Ge | `Add | `Sub
      | `Mul ]
      * expr
      * expr
  | Cond of expr * expr * expr

type stmt =
  | Assign of string * expr * int  (* line *)
  | If of (expr * stmt list) list * stmt list option

type decl = {
  d_state : bool;
  d_name : string;
  d_ty : ty;
  d_init : expr option;
  d_line : int;
}

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

type ps = { toks : (token * int) array; mutable cur : int }

let tok ps = fst ps.toks.(ps.cur)
let lno ps = snd ps.toks.(ps.cur)
let advance ps = if ps.cur < Array.length ps.toks - 1 then ps.cur <- ps.cur + 1

let expect ps t =
  if tok ps = t then advance ps
  else fail (lno ps) "expected '%s' but found '%s'" (token_name t)
         (token_name (tok ps))

let expect_ident ps =
  match tok ps with
  | Tident s ->
    advance ps;
    s
  | t -> fail (lno ps) "expected identifier but found '%s'" (token_name t)

(* expressions; enum literals are resolved later, so references and
   enum literals both parse as Ref *)
let rec parse_primary ps =
  match tok ps with
  | Tint v ->
    advance ps;
    Lit v
  | Ttrue ->
    advance ps;
    Lit 1
  | Tfalse ->
    advance ps;
    Lit 0
  | Tident name ->
    let line = lno ps in
    advance ps;
    Ref (name, line)
  | Tlparen ->
    advance ps;
    let e = parse_expr ps in
    expect ps Trparen;
    e
  | Tbang ->
    advance ps;
    Unop (`Not, parse_primary ps)
  | Tminus ->
    advance ps;
    Unop (`Neg, parse_primary ps)
  | t -> fail (lno ps) "expected expression but found '%s'" (token_name t)

and parse_mul ps =
  let rec loop lhs =
    if tok ps = Tstar then begin
      advance ps;
      loop (Binop (`Mul, lhs, parse_primary ps))
    end
    else lhs
  in
  loop (parse_primary ps)

and parse_add ps =
  let rec loop lhs =
    match tok ps with
    | Tplus ->
      advance ps;
      loop (Binop (`Add, lhs, parse_mul ps))
    | Tminus ->
      advance ps;
      loop (Binop (`Sub, lhs, parse_mul ps))
    | _ -> lhs
  in
  loop (parse_mul ps)

and parse_cmp ps =
  let lhs = parse_add ps in
  let op =
    match tok ps with
    | Teq -> Some `Eq
    | Tneq -> Some `Neq
    | Tlt -> Some `Lt
    | Tle -> Some `Le
    | Tgt -> Some `Gt
    | Tge -> Some `Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance ps;
    Binop (op, lhs, parse_add ps)

and parse_and ps =
  let rec loop lhs =
    if tok ps = Tamp then begin
      advance ps;
      loop (Binop (`And, lhs, parse_cmp ps))
    end
    else lhs
  in
  loop (parse_cmp ps)

and parse_or ps =
  let rec loop lhs =
    if tok ps = Tbar then begin
      advance ps;
      loop (Binop (`Or, lhs, parse_and ps))
    end
    else lhs
  in
  loop (parse_and ps)

and parse_expr ps =
  let c = parse_or ps in
  if tok ps = Tquestion then begin
    advance ps;
    let t = parse_expr ps in
    expect ps Tcolon;
    let f = parse_expr ps in
    Cond (c, t, f)
  end
  else c

let parse_ty ps =
  match tok ps with
  | Tbool ->
    advance ps;
    Bool
  | Tint lo ->
    advance ps;
    expect ps Tdotdot;
    (match tok ps with
     | Tint hi ->
       advance ps;
       if hi < lo then fail (lno ps) "empty range %d..%d" lo hi;
       Range (lo, hi)
     | t -> fail (lno ps) "expected range bound, found '%s'" (token_name t))
  | Tlbrace ->
    advance ps;
    let rec names acc =
      let n = expect_ident ps in
      if tok ps = Tcomma then begin
        advance ps;
        names (n :: acc)
      end
      else begin
        expect ps Trbrace;
        List.rev (n :: acc)
      end
    in
    Enum (Array.of_list (names []))
  | t -> fail (lno ps) "expected a type, found '%s'" (token_name t)

let rec parse_stmts ps =
  let rec loop acc =
    match tok ps with
    | Tident _ ->
      let line = lno ps in
      let name = expect_ident ps in
      expect ps Tassign;
      let e = parse_expr ps in
      expect ps Tsemi;
      loop (Assign (name, e, line) :: acc)
    | Tif ->
      advance ps;
      let cond = parse_expr ps in
      expect ps Tthen;
      let body = parse_stmts ps in
      let rec branches acc_b =
        match tok ps with
        | Telsif ->
          advance ps;
          let c = parse_expr ps in
          expect ps Tthen;
          let b = parse_stmts ps in
          branches ((c, b) :: acc_b)
        | Telse ->
          advance ps;
          let b = parse_stmts ps in
          expect ps Tend;
          (List.rev acc_b, Some b)
        | Tend ->
          advance ps;
          (List.rev acc_b, None)
        | t ->
          fail (lno ps) "expected elsif/else/end, found '%s'" (token_name t)
      in
      let rest, dflt = branches [] in
      (* optional ';' after end *)
      if tok ps = Tsemi then advance ps;
      loop (If ((cond, body) :: rest, dflt) :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_file src =
  let ps = { toks = tokenize src; cur = 0 } in
  expect ps Tmodel;
  let name = expect_ident ps in
  let decls = ref [] in
  let rec decl_loop () =
    match tok ps with
    | Tstate | Tchoice ->
      let d_state = tok ps = Tstate in
      let d_line = lno ps in
      advance ps;
      let d_name = expect_ident ps in
      expect ps Tcolon;
      let d_ty = parse_ty ps in
      let d_init =
        if tok ps = Teq1 then begin
          advance ps;
          Some (parse_expr ps)
        end
        else None
      in
      decls := { d_state; d_name; d_ty; d_init; d_line } :: !decls;
      decl_loop ()
    | _ -> ()
  in
  decl_loop ();
  expect ps Tupdate;
  let body = parse_stmts ps in
  expect ps Tend;
  if tok ps <> Teof then
    fail (lno ps) "trailing input after the update block";
  (name, List.rev !decls, body)

(* ------------------------------------------------------------------ *)
(* Elaboration to a Model                                             *)
(* ------------------------------------------------------------------ *)

let ty_values = function
  | Bool -> [| "false"; "true" |]
  | Range (lo, hi) -> Array.init (hi - lo + 1) (fun i -> string_of_int (lo + i))
  | Enum names -> names

(* Actual value <-> index within the domain. *)
let index_of_actual ty v =
  match ty with
  | Bool | Enum _ -> v
  | Range (lo, _) -> v - lo

let actual_of_index ty i =
  match ty with
  | Bool | Enum _ -> i
  | Range (lo, _) -> lo + i

let model_name src =
  let name, _, _ = parse_file src in
  name

let parse src =
  let name, decls, body = parse_file src in
  (* Symbol tables. *)
  let var_tbl = Hashtbl.create 16 in
  let enum_tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem var_tbl d.d_name then
        fail d.d_line "duplicate variable %s" d.d_name;
      Hashtbl.replace var_tbl d.d_name d;
      match d.d_ty with
      | Enum names ->
        Array.iteri
          (fun i lit ->
            if Hashtbl.mem enum_tbl lit then
              fail d.d_line "enum literal %s declared twice" lit;
            Hashtbl.replace enum_tbl lit i)
          names
      | Bool | Range _ -> ())
    decls;
  (* Static name checking: every reference resolves, every assignment
     target is a state variable. *)
  let rec check_expr e =
    match e with
    | Lit _ -> ()
    | Ref (n, line) ->
      if not (Hashtbl.mem var_tbl n || Hashtbl.mem enum_tbl n) then
        fail line "unknown name %s" n
    | Unop (_, e) -> check_expr e
    | Binop (_, a, b) ->
      check_expr a;
      check_expr b
    | Cond (c, a, b) ->
      check_expr c;
      check_expr a;
      check_expr b
  in
  (* Constant folding (variables block folding; enum literals and
     arithmetic fold) for static range checks. *)
  let rec cfold e =
    match e with
    | Lit v -> Some v
    | Ref (n, _) ->
      if Hashtbl.mem var_tbl n then None else Hashtbl.find_opt enum_tbl n
    | Unop (op, e) ->
      Option.map
        (fun v -> match op with `Not -> (if v = 0 then 1 else 0) | `Neg -> -v)
        (cfold e)
    | Binop (op, a, b) ->
      Option.bind (cfold a) (fun va ->
          Option.map
            (fun vb ->
              let b2i c = if c then 1 else 0 in
              match op with
              | `And -> b2i (va <> 0 && vb <> 0)
              | `Or -> b2i (va <> 0 || vb <> 0)
              | `Eq -> b2i (va = vb)
              | `Neq -> b2i (va <> vb)
              | `Lt -> b2i (va < vb)
              | `Le -> b2i (va <= vb)
              | `Gt -> b2i (va > vb)
              | `Ge -> b2i (va >= vb)
              | `Add -> va + vb
              | `Sub -> va - vb
              | `Mul -> va * vb)
            (cfold b))
    | Cond (c, t, f) ->
      Option.bind (cfold c) (fun vc -> if vc <> 0 then cfold t else cfold f)
  in
  let ty_bounds = function
    | Bool -> (0, 1)
    | Range (lo, hi) -> (lo, hi)
    | Enum names -> (0, Array.length names - 1)
  in
  let rec check_stmt assigned_here s =
    match s with
    | Assign (n, e, line) ->
      (match Hashtbl.find_opt var_tbl n with
       | Some d when d.d_state ->
         (match cfold e with
          | Some v ->
            let lo, hi = ty_bounds d.d_ty in
            if v < lo || v > hi then
              fail line "value %d out of range for %s" v n
          | None -> ())
       | Some _ -> fail line "cannot assign to choice %s" n
       | None -> fail line "unknown state variable %s" n);
      if List.mem n !assigned_here then
        fail line "%s assigned twice in one cycle" n;
      assigned_here := n :: !assigned_here;
      check_expr e
    | If (branches, dflt) ->
      List.iter
        (fun (c, b) ->
          check_expr c;
          let r = ref !assigned_here in
          List.iter (check_stmt r) b)
        branches;
      Option.iter
        (fun b ->
          let r = ref !assigned_here in
          List.iter (check_stmt r) b)
        dflt
  in
  let top_assigned = ref [] in
  List.iter (check_stmt top_assigned) body;
  List.iter (fun d -> Option.iter check_expr d.d_init) decls;
  let states = List.filter (fun d -> d.d_state) decls in
  let choices = List.filter (fun d -> not d.d_state) decls in
  let state_index = Hashtbl.create 16 and choice_index = Hashtbl.create 16 in
  List.iteri (fun i d -> Hashtbl.replace state_index d.d_name i) states;
  List.iteri (fun i d -> Hashtbl.replace choice_index d.d_name i) choices;
  (* Expression evaluation over actual values. *)
  let rec eval lookup e =
    match e with
    | Lit v -> v
    | Ref (n, line) ->
      (match lookup n with
       | Some v -> v
       | None ->
         (match Hashtbl.find_opt enum_tbl n with
          | Some v -> v
          | None -> fail line "unknown name %s" n))
    | Unop (`Not, e) -> if eval lookup e = 0 then 1 else 0
    | Unop (`Neg, e) -> -eval lookup e
    | Binop (op, a, b) ->
      let va = eval lookup a and vb = eval lookup b in
      let b2i c = if c then 1 else 0 in
      (match op with
       | `And -> b2i (va <> 0 && vb <> 0)
       | `Or -> b2i (va <> 0 || vb <> 0)
       | `Eq -> b2i (va = vb)
       | `Neq -> b2i (va <> vb)
       | `Lt -> b2i (va < vb)
       | `Le -> b2i (va <= vb)
       | `Gt -> b2i (va > vb)
       | `Ge -> b2i (va >= vb)
       | `Add -> va + vb
       | `Sub -> va - vb
       | `Mul -> va * vb)
    | Cond (c, t, f) ->
      if eval lookup c <> 0 then eval lookup t else eval lookup f
  in
  (* Resets. *)
  let reset =
    List.map
      (fun d ->
        let actual =
          match d.d_init with
          | None -> actual_of_index d.d_ty 0
          | Some e -> eval (fun _ -> None) e
        in
        let idx = index_of_actual d.d_ty actual in
        let card = Array.length (ty_values d.d_ty) in
        if idx < 0 || idx >= card then
          fail d.d_line "initial value of %s out of range" d.d_name;
        idx)
      states
  in
  List.iter
    (fun d ->
      if d.d_init <> None then
        fail d.d_line "choice %s cannot have an initial value" d.d_name)
    choices;
  let state_arr = Array.of_list states in
  let choice_arr = Array.of_list choices in
  (* Transition function, writing into a caller-provided buffer; the
     twice-assigned scratch is per-domain so enumeration can run the
     update block from several domains at once. *)
  let nstates = List.length states in
  let assigned_key = Domain.DLS.new_key (fun () -> Array.make nstates false) in
  let next_into st ch out =
    Array.blit st 0 out 0 nstates;
    let assigned = Domain.DLS.get assigned_key in
    Array.fill assigned 0 nstates false;
    let lookup n =
      match Hashtbl.find_opt state_index n with
      | Some i -> Some (actual_of_index state_arr.(i).d_ty st.(i))
      | None ->
        (match Hashtbl.find_opt choice_index n with
         | Some i -> Some (actual_of_index choice_arr.(i).d_ty ch.(i))
         | None -> None)
    in
    let rec exec stmts =
      List.iter
        (fun s ->
          match s with
          | Assign (n, e, line) ->
            (match Hashtbl.find_opt state_index n with
             | None ->
               if Hashtbl.mem choice_index n then
                 fail line "cannot assign to choice %s" n
               else fail line "unknown state variable %s" n
             | Some i ->
               if assigned.(i) then
                 fail line "%s assigned twice in one cycle" n;
               let actual = eval lookup e in
               let idx = index_of_actual state_arr.(i).d_ty actual in
               let card = Array.length (ty_values state_arr.(i).d_ty) in
               if idx < 0 || idx >= card then
                 fail line "value %d out of range for %s" actual n;
               assigned.(i) <- true;
               out.(i) <- idx)
          | If (branches, dflt) ->
            let rec pick = function
              | [] -> (match dflt with Some b -> exec b | None -> ())
              | (c, b) :: rest ->
                if eval lookup c <> 0 then exec b else pick rest
            in
            pick branches)
        stmts
    in
    exec body
  in
  let next st ch =
    let out = Array.make nstates 0 in
    next_into st ch out;
    out
  in
  Model.create ~name ~next_into
    ~state_vars:
      (List.map (fun d -> Model.var d.d_name (ty_values d.d_ty)) states)
    ~choice_vars:
      (List.map (fun d -> Model.var d.d_name (ty_values d.d_ty)) choices)
    ~reset ~next ()

(* ------------------------------------------------------------------ *)
(* Guard lint                                                         *)
(* ------------------------------------------------------------------ *)

(* Static checks over the if/elsif chains of the update block, without
   building the transition function: duplicate guards and guards after
   a constant-true guard can never fire (the first matching branch
   wins); constant-false guards are dead outright.  Findings are
   (line, rule, message) triples so the analysis layer can dress them
   uniformly. *)
let lint src : (int * string * string) list =
  let _, decls, body = parse_file src in
  let var_tbl = Hashtbl.create 16 and enum_tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      Hashtbl.replace var_tbl d.d_name ();
      match d.d_ty with
      | Enum names ->
        Array.iteri (fun i l -> Hashtbl.replace enum_tbl l i) names
      | Bool | Range _ -> ())
    decls;
  let rec cfold e =
    match e with
    | Lit v -> Some v
    | Ref (n, _) ->
      if Hashtbl.mem var_tbl n then None else Hashtbl.find_opt enum_tbl n
    | Unop (op, e) ->
      Option.map
        (fun v -> match op with `Not -> (if v = 0 then 1 else 0) | `Neg -> -v)
        (cfold e)
    | Binop (op, a, b) ->
      Option.bind (cfold a) (fun va ->
          Option.map
            (fun vb ->
              let b2i c = if c then 1 else 0 in
              match op with
              | `And -> b2i (va <> 0 && vb <> 0)
              | `Or -> b2i (va <> 0 || vb <> 0)
              | `Eq -> b2i (va = vb)
              | `Neq -> b2i (va <> vb)
              | `Lt -> b2i (va < vb)
              | `Le -> b2i (va <= vb)
              | `Gt -> b2i (va > vb)
              | `Ge -> b2i (va >= vb)
              | `Add -> va + vb
              | `Sub -> va - vb
              | `Mul -> va * vb)
            (cfold b))
    | Cond (c, t, f) ->
      Option.bind (cfold c) (fun vc -> if vc <> 0 then cfold t else cfold f)
  in
  let rec expr_line = function
    | Ref (_, l) -> l
    | Lit _ -> 0
    | Unop (_, e) -> expr_line e
    | Binop (_, a, b) ->
      let l = expr_line a in
      if l > 0 then l else expr_line b
    | Cond (c, t, f) ->
      let l = expr_line c in
      if l > 0 then l
      else
        let l = expr_line t in
        if l > 0 then l else expr_line f
  in
  (* Structural guard identity modulo source position. *)
  let rec strip = function
    | Lit v -> Lit v
    | Ref (n, _) -> Ref (n, 0)
    | Unop (o, e) -> Unop (o, strip e)
    | Binop (o, a, b) -> Binop (o, strip a, strip b)
    | Cond (c, t, f) -> Cond (strip c, strip t, strip f)
  in
  let out = ref [] in
  let add line rule msg = out := (line, rule, msg) :: !out in
  let rec walk s =
    match s with
    | Assign _ -> ()
    | If (branches, dflt) ->
      let n = List.length branches in
      let seen = ref [] in
      let shadowed = ref false in
      List.iteri
        (fun i (c, b) ->
          let line = expr_line c in
          if !shadowed then
            add line "fsm-shadowed-guard"
              "guard can never fire: an earlier guard of this chain is \
               constant true"
          else begin
            let key = strip c in
            if List.mem key !seen then
              add line "fsm-shadowed-guard"
                "guard duplicates an earlier guard of this chain and can \
                 never fire"
            else seen := key :: !seen;
            match cfold c with
            | Some 0 ->
              add line "fsm-dead-guard"
                "guard is constant false: this branch never fires"
            | Some _ ->
              shadowed := true;
              if i < n - 1 || dflt <> None then
                add line "fsm-dead-guard"
                  "guard is constant true: the rest of this chain never \
                   fires"
            | None -> ()
          end;
          List.iter walk b)
        branches;
      Option.iter (List.iter walk) dflt
  in
  List.iter walk body;
  List.rev !out
