(** A small Synchronous-Murphi-style modeling language.

    The paper's enumerator consumes Synchronous Murphi: explicit state
    variables updated by an implicit clock, and nondeterministic
    choice blocks whose every value combination is permuted during
    enumeration.  This module gives that surface a concrete,
    hand-writable syntax, so abstract models (the specification FSMs
    of Section 4, interface abstractions of other MAGIC units, ...)
    can be written as text and enumerated directly:

    {v
    -- an alternating-bit sender
    model abp_sender

    state seq     : bool = false
    state waiting : bool = false

    choice send_req : bool
    choice ack      : { NONE, ACK0, ACK1 }

    update
      if !waiting then
        if send_req then waiting := true; end
      else
        if (seq == false & ack == ACK0)
         | (seq == true  & ack == ACK1) then
          waiting := false;
          seq := !seq;
        end
      end
    end
    v}

    Types are [bool], integer ranges [lo..hi] and enumerations
    [{ A, B, C }].  The [update] block runs once per clock: all reads
    see current values, [x := e;] sets the next value (at most once
    per variable per cycle), unassigned variables hold.  Conditionals
    are [if .. then .. elsif .. else .. end]. *)

exception Error of string * int  (** message, 1-based line *)

val parse : string -> Model.t
(** Builds the enumerable model.
    @raise Error on syntax or type problems. *)

val model_name : string -> string
(** The declared model name, without building the transition
    function.  @raise Error as {!parse}. *)

val lint : string -> (int * string * string) list
(** Static guard checks over the update block, without building the
    transition function: [(line, rule, message)] triples.  Rules:
    [fsm-shadowed-guard] (a guard duplicates an earlier guard of the
    same if/elsif chain, or follows a constant-true guard, so it can
    never fire) and [fsm-dead-guard] (a guard folds to a constant).
    @raise Error as {!parse}. *)
