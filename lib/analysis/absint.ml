(* Abstract interpretation over elaborated designs.

   One product domain per net: a known-bits plane pair (which bits of
   the packed value/unknown planes are proven) plus an integer
   value-plane interval.  A fixpoint over the sequential step function
   — comb settling ordered by the Dataflow SCC condensation, then
   edge-triggered fire/commit — yields two invariant environments:

   - [all]: holds at EVERY program point of every execution whose
     stimulus pokes or forces only unconstrained nets: power-on
     values, mid-settle transients and seq-blocking overlays included.
     This is the contract [Compile.facts] wants, so [facts] feeds the
     kernel specializer directly.

   - [run]: holds at every settled observation point of the
     translate/replay protocol (reset held for [reset_cycles] posedge
     steps, then pinned 0; only the clock is ever stepped).  Sharper —
     reset constants survive — and exactly what the state enumerator
     and the mutant divergence check observe.

   Soundness before precision: every transfer function may return top;
   exact evaluation defers to [Compile.unop_val]/[binop_val], the same
   code both engines execute. *)

open Avp_logic
open Avp_hdl

let limit = Bv.packed_width_limit

(* ------------------------------------------------------------------ *)
(* Abstract values                                                    *)
(* ------------------------------------------------------------------ *)

type av = {
  w : int;
  kv : int;  (** mask of value-plane bits with a proven value *)
  v : int;  (** their values; [v land kv = v] *)
  ku : int;  (** mask of unknown-plane bits with a proven value *)
  u : int;  (** their values; [u land ku = u] *)
  lo : int;  (** value-plane integer bounds (meaningless when wide) *)
  hi : int;
}

let bits w = if w >= limit then limit else w
let mask w = (1 lsl bits w) - 1
let wide a = a.w > limit

let top w =
  { w; kv = 0; v = 0; ku = 0; u = 0; lo = 0; hi = mask w }

(* Highest set bit of a positive int, as a power of two. *)
let hsb x =
  let r = ref x in
  let p = ref 0 in
  while !r > 1 do
    incr p;
    r := !r lsr 1
  done;
  1 lsl !p

(* Canonical form: interval and known bits tighten each other.  The
   interval bounds the value plane as an unsigned integer, so the
   common prefix of [lo] and [hi] is a set of proven bits and proven
   bits shrink the interval. *)
let norm a =
  if wide a then a
  else begin
    let m = mask a.w in
    let lo = max a.lo a.v in
    let hi = min a.hi (a.v lor (m land lnot a.kv)) in
    let lo, hi = if lo > hi then (a.v, a.v lor (m land lnot a.kv)) else (lo, hi) in
    if lo = hi then { a with kv = m; v = lo; lo; hi }
    else begin
      let pref = m land lnot ((hsb (lo lxor hi) lsl 1) - 1) in
      let kv = a.kv lor pref in
      let v = a.v lor (lo land pref land lnot a.kv) in
      { a with kv; v; lo; hi }
    end
  end

let of_bv bv =
  let w = Bv.width bv in
  match Bv.planes bv with
  | Some (pv, pu) when w <= limit ->
    norm { w; kv = mask w; v = pv; ku = mask w; u = pu; lo = pv; hi = pv }
  | _ -> top w

let to_bv a =
  if (not (wide a)) && a.kv = mask a.w && a.ku = mask a.w then
    Some (Bv.of_planes ~width:a.w a.v a.u)
  else None

let is_const a = to_bv a <> None
let defined a = (not (wide a)) && a.ku = mask a.w && a.u = 0

(* Drop the interval to what the known bits alone imply — the sound
   fallback whenever bits from several sources can mix. *)
let blur a =
  if wide a then a
  else norm { a with lo = a.v; hi = a.v lor (mask a.w land lnot a.kv) }

let join a b =
  if wide a || a.w <> b.w then top a.w
  else begin
    let kv = a.kv land b.kv land lnot (a.v lxor b.v) in
    let ku = a.ku land b.ku land lnot (a.u lxor b.u) in
    norm
      { w = a.w; kv; v = a.v land kv; ku; u = a.u land ku;
        lo = min a.lo b.lo; hi = max a.hi b.hi }
  end

let equal_av (a : av) (b : av) = a = b

(* Interval widening against the previous iterate: any bound still in
   motion jumps to its extreme, bounding the chain length (known bits
   only ever disappear, so they need no widening). *)
let widen ~prev cur =
  if wide cur then cur
  else
    let lo = if cur.lo < prev.lo then 0 else cur.lo in
    let hi = if cur.hi > prev.hi then mask cur.w else cur.hi in
    if lo = cur.lo && hi = cur.hi then cur else { cur with lo; hi }

(* Truth of a condition, mirroring both engines: a vector is true iff
   some bit is a definite 1 ([Bv.to_bool]), false iff every bit is a
   definite 0. *)
let truth a =
  if wide a then `U
  else begin
    let m = mask a.w in
    if a.kv land a.v land a.ku land lnot a.u <> 0 then `T
    else if a.kv = m && a.v = 0 && a.ku = m && a.u = 0 then `F
    else `U
  end

let resize a w' =
  if w' = a.w then a
  else if w' > limit || wide a then top w'
  else begin
    let m' = mask w' in
    if w' < a.w then
      let lo, hi = if a.hi <= m' then (a.lo, a.hi) else (0, m') in
      norm
        { w = w'; kv = a.kv land m'; v = a.v land m'; ku = a.ku land m';
          u = a.u land m'; lo; hi }
    else
      (* Zero-extension: the new high bits are proven (0,0). *)
      let ext = m' land lnot (mask a.w) in
      norm
        { w = w'; kv = a.kv lor ext; v = a.v; ku = a.ku lor ext; u = a.u;
          lo = a.lo; hi = a.hi }
  end

let select a ~hi ~lo =
  let w' = hi - lo + 1 in
  if wide a || w' > limit then top w'
  else begin
    let m' = mask w' in
    norm
      { w = w'; kv = (a.kv lsr lo) land m'; v = (a.v lsr lo) land m';
        ku = (a.ku lsr lo) land m'; u = (a.u lsr lo) land m';
        lo = 0; hi = m' }
  end

(* [a] is the MSB part. *)
let concat_av a b =
  let w' = a.w + b.w in
  if w' > limit || wide a || wide b then top w'
  else
    norm
      { w = w';
        kv = (a.kv lsl b.w) lor b.kv; v = (a.v lsl b.w) lor b.v;
        ku = (a.ku lsl b.w) lor b.ku; u = (a.u lsl b.w) lor b.u;
        lo = (a.lo lsl b.w) lor b.lo; hi = (a.hi lsl b.w) lor b.hi }

(* Replace bits [at .. at + piece.w - 1]. *)
let insert base piece ~at =
  if wide base then top base.w
  else if at + piece.w > bits base.w then top base.w
  else begin
    let pm = mask piece.w lsl at in
    let keep = lnot pm in
    norm
      { w = base.w;
        kv = (base.kv land keep) lor ((piece.kv lsl at) land pm);
        v = (base.v land keep) lor ((piece.v lsl at) land pm);
        ku = (base.ku land keep) lor ((piece.ku lsl at) land pm);
        u = (base.u land keep) lor ((piece.u lsl at) land pm);
        lo = 0; hi = mask base.w }
  end

(* Every bit independently keeps its value or becomes [bit]'s — the
   abstraction of a write through an unknown index. *)
let weaken base bit =
  if wide base then top base.w
  else begin
    let m = mask base.w in
    let rep x = if x land 1 = 1 then m else 0 in
    let r =
      { w = base.w; kv = rep bit.kv; v = rep bit.v; ku = rep bit.ku;
        u = rep bit.u; lo = 0; hi = m }
    in
    blur (join base r)
  end

let all_z_av w = of_bv (Bv.all_z (min w (limit + 1)))
let av_x1 = of_bv (Bv.of_string "x")

(* Per-bit masks used by several transfers. *)
let def0 a = a.kv land lnot a.v land a.ku land lnot a.u
let def1 a = a.kv land a.v land a.ku land lnot a.u
let known_z a = a.kv land lnot a.v land a.ku land a.u
let known_not_z a = a.kv land a.ku land lnot (lnot a.v land a.u)
let pair_known a = a.kv land a.ku

(* Verilog net resolution of two contributions of equal width. *)
let resolve a b =
  if wide a then top a.w
  else begin
    let take_a = known_z b in
    let take_b = known_not_z b land known_z a in
    let both = known_not_z a land known_not_z b in
    let same = both land lnot ((a.v lxor b.v) lor (a.u lxor b.u)) in
    let clash = both land lnot same in
    let kv = (a.kv land take_a) lor (b.kv land take_b) lor same lor clash in
    let v = (a.v land take_a) lor (b.v land take_b) lor (a.v land same) lor clash in
    let ku = (a.ku land take_a) lor (b.ku land take_b) lor same lor clash in
    let u = (a.u land take_a) lor (b.u land take_b) lor (a.u land same) lor clash in
    norm { w = a.w; kv; v = v land kv; ku; u = u land ku; lo = 0; hi = mask a.w }
  end

let defined_unknown w =
  if w > limit then top w
  else norm { w; kv = 0; v = 0; ku = mask w; u = 0; lo = 0; hi = mask w }

let const_bit b = of_bv (Bv.of_int ~width:1 b)

(* ------------------------------------------------------------------ *)
(* Expression transfer                                                *)
(* ------------------------------------------------------------------ *)

let binop_width op wx wy =
  match op with
  | Ast.Eq | Ast.Neq | Ast.Ceq | Ast.Cneq | Ast.Lt | Ast.Le | Ast.Gt
  | Ast.Ge | Ast.Land | Ast.Lor -> 1
  | Ast.Shl | Ast.Shr -> wx
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Band | Ast.Bor | Ast.Bxor ->
    max wx wy

let abs_unop op x =
  let wx = x.w in
  match to_bv x with
  | Some bv -> of_bv (Compile.unop_val op bv)
  | None ->
    (match op with
     | Ast.Bnot ->
       if wide x then top wx
       else begin
         let kv = x.kv land x.ku in
         let v = ((lnot x.v land lnot x.u) lor x.u) land kv in
         blur { w = wx; kv; v; ku = x.ku; u = x.u; lo = 0; hi = mask wx }
       end
     | Ast.Neg -> if defined x then defined_unknown wx else top wx
     | Ast.Not ->
       (match truth x with
        | `T -> const_bit 0
        | `F -> const_bit 1
        | `U -> if defined x then defined_unknown 1 else top 1)
     | Ast.Uor ->
       (match truth x with
        | `T -> const_bit 1
        | `F -> const_bit 0
        | `U -> if defined x then defined_unknown 1 else top 1)
     | Ast.Uand ->
       if (not (wide x)) && def1 x = mask x.w then const_bit 1
       else if def0 x <> 0 then const_bit 0
       else if defined x then defined_unknown 1
       else top 1
     | Ast.Uxor -> if defined x then defined_unknown 1 else top 1)

let abs_binop op x y =
  let wr = binop_width op x.w y.w in
  match (to_bv x, to_bv y) with
  | Some bx, Some by -> of_bv (Compile.binop_val op bx by)
  | _ ->
    if wr > limit then top wr
    else begin
      let m = mask wr in
      (* Definite per-bit mismatch on a plane both sides know. *)
      let both_pairs a b = pair_known (resize a wr) land pair_known (resize b wr) in
      let case_mismatch =
        let a = resize x wr and b = resize y wr in
        let k = both_pairs x y in
        k land ((a.v lxor b.v) lor (a.u lxor b.u)) <> 0
      in
      let defined_mismatch =
        let a = resize x wr and b = resize y wr in
        let k = def0 a lor def1 a in
        let k' = def0 b lor def1 b in
        k land k' land (a.v lxor b.v) <> 0
      in
      match op with
      | Ast.Band ->
        let a = resize x wr and b = resize y wr in
        let z = def0 a lor def0 b in
        let one = def1 a land def1 b in
        blur { w = wr; kv = z lor one; v = one; ku = z lor one; u = 0;
               lo = 0; hi = m }
      | Ast.Bor ->
        let a = resize x wr and b = resize y wr in
        let one = def1 a lor def1 b in
        let z = def0 a land def0 b in
        blur { w = wr; kv = z lor one; v = one; ku = z lor one; u = 0;
               lo = 0; hi = m }
      | Ast.Bxor ->
        let a = resize x wr and b = resize y wr in
        let k = (def0 a lor def1 a) land (def0 b lor def1 b) in
        blur { w = wr; kv = k; v = (a.v lxor b.v) land k; ku = k; u = 0;
               lo = 0; hi = m }
      | Ast.Add ->
        if defined x && defined y then begin
          let lo = x.lo + y.lo and hi = x.hi + y.hi in
          let lo, hi = if hi <= m && hi >= 0 then (lo, hi) else (0, m) in
          norm { (defined_unknown wr) with lo; hi }
        end
        else top wr
      | Ast.Sub ->
        if defined x && defined y then begin
          if x.lo >= y.hi then
            norm { (defined_unknown wr) with lo = x.lo - y.hi; hi = x.hi - y.lo }
          else defined_unknown wr
        end
        else top wr
      | Ast.Mul ->
        if defined x && defined y then begin
          if y.hi = 0 || x.hi <= m / y.hi then
            norm { (defined_unknown wr) with lo = x.lo * y.lo; hi = x.hi * y.hi }
          else defined_unknown wr
        end
        else top wr
      | Ast.Eq ->
        if defined x && defined y then begin
          if defined_mismatch || x.hi < y.lo || y.hi < x.lo then const_bit 0
          else defined_unknown 1
        end
        else top 1
      | Ast.Neq ->
        if defined x && defined y then begin
          if defined_mismatch || x.hi < y.lo || y.hi < x.lo then const_bit 1
          else defined_unknown 1
        end
        else top 1
      | Ast.Ceq -> if case_mismatch then const_bit 0 else defined_unknown 1
      | Ast.Cneq -> if case_mismatch then const_bit 1 else defined_unknown 1
      | Ast.Lt ->
        if defined x && defined y then begin
          if x.hi < y.lo then const_bit 1
          else if x.lo >= y.hi then const_bit 0
          else defined_unknown 1
        end
        else top 1
      | Ast.Le ->
        if defined x && defined y then begin
          if x.hi <= y.lo then const_bit 1
          else if x.lo > y.hi then const_bit 0
          else defined_unknown 1
        end
        else top 1
      | Ast.Gt ->
        if defined x && defined y then begin
          if x.lo > y.hi then const_bit 1
          else if x.hi <= y.lo then const_bit 0
          else defined_unknown 1
        end
        else top 1
      | Ast.Ge ->
        if defined x && defined y then begin
          if x.lo >= y.hi then const_bit 1
          else if x.hi < y.lo then const_bit 0
          else defined_unknown 1
        end
        else top 1
      | Ast.Land ->
        (match (truth x, truth y) with
         | `T, `T -> const_bit 1
         | (`T | `F), (`T | `F) -> const_bit 0
         | _ -> top 1)
      | Ast.Lor ->
        (match (truth x, truth y) with
         | `F, `F -> const_bit 0
         | (`T | `F), (`T | `F) -> const_bit 1
         | _ -> top 1)
      | Ast.Shl ->
        (match to_bv y with
         | Some by when Bv.is_defined by ->
           (match Bv.to_int by with
            | Some k when k < bits wr ->
              let low = (1 lsl k) - 1 in
              blur
                { w = wr; kv = ((x.kv lsl k) lor low) land m;
                  v = (x.v lsl k) land m;
                  ku = ((x.ku lsl k) lor low) land m;
                  u = (x.u lsl k) land m; lo = 0; hi = m }
            | Some _ -> of_bv (Bv.of_int ~width:wr 0)
            | None -> top wr)
         | _ ->
           if defined x && defined y then defined_unknown wr else top wr)
      | Ast.Shr ->
        (match to_bv y with
         | Some by when Bv.is_defined by ->
           (match Bv.to_int by with
            | Some k when k < bits wr ->
              let highk = m land lnot (mask (wr - k)) in
              blur
                { w = wr; kv = (x.kv lsr k) lor highk; v = x.v lsr k;
                  ku = (x.ku lsr k) lor highk; u = x.u lsr k;
                  lo = 0; hi = m }
            | Some _ -> of_bv (Bv.of_int ~width:wr 0)
            | None -> top wr)
         | _ ->
           if defined x && defined y then
             norm { (defined_unknown wr) with lo = 0; hi = x.hi }
           else top wr)
    end

let rec eval (rd : int -> av) (d : Elab.t) (e : Elab.eexpr) : av =
  match e with
  | Elab.Const c -> of_bv c
  | Elab.Net id -> rd id
  | Elab.Range (id, hi, lo) -> select (rd id) ~hi ~lo
  | Elab.Index (id, ix) ->
    let a = rd id in
    let wn = d.Elab.nets.(id).Elab.width in
    let ai = eval rd d ix in
    (match to_bv ai with
     | Some bvi ->
       (match Bv.to_int bvi with
        | Some i when i < wn -> select a ~hi:i ~lo:i
        | _ -> av_x1)
     | None ->
       if wide a then top 1
       else begin
         (* Some bit of the net, or X if the index can go astray. *)
         let acc = ref (select a ~hi:0 ~lo:0) in
         for i = 1 to bits wn - 1 do
           acc := join !acc (select a ~hi:i ~lo:i)
         done;
         let in_range = defined ai && ai.hi < wn in
         if in_range then !acc else join !acc av_x1
       end)
  | Elab.Unop (op, x) -> abs_unop op (eval rd d x)
  | Elab.Binop (op, x, y) -> abs_binop op (eval rd d x) (eval rd d y)
  | Elab.Ternary (c, x, y) ->
    let ac = eval rd d c in
    (match truth ac with
     | `T -> eval rd d x
     | `F -> eval rd d y
     | `U ->
       let ax = eval rd d x and ay = eval rd d y in
       let w = max ax.w ay.w in
       let ax = resize ax w and ay = resize ay w in
       if defined ac then join ax ay
       else if w > limit then top w
       else begin
         (* The selector can be X, which muxes per-bit: only bits both
            arms agree on survive; anything else may go X. *)
         let g =
           ax.kv land ay.kv land lnot (ax.v lxor ay.v) land ax.ku
           land ay.ku land lnot (ax.u lxor ay.u)
         in
         let j = join ax ay in
         blur
           { j with kv = j.kv land g; v = j.v land g; ku = j.ku land g;
                    u = j.u land g }
       end)
  | Elab.Concat es ->
    (match es with
     | [] -> top 1
     | first :: rest ->
       List.fold_left
         (fun acc e -> concat_av acc (eval rd d e))
         (eval rd d first) rest)
  | Elab.Repeat (n, x) ->
    let ax = eval rd d x in
    let acc = ref ax in
    for _ = 2 to n do
      acc := concat_av !acc ax
    done;
    !acc

(* ------------------------------------------------------------------ *)
(* Statement transfer                                                 *)
(* ------------------------------------------------------------------ *)

(* Writers receive full-width per-net values: partial lvalues are
   folded with the net's current abstraction before the write. *)
type writer = blocking:bool -> definite:bool -> int -> av -> unit

let lv_width (d : Elab.t) lv =
  let rec go = function
    | Elab.Lnet id -> d.Elab.nets.(id).Elab.width
    | Elab.Lindex _ -> 1
    | Elab.Lrange (_, hi, lo) -> hi - lo + 1
    | Elab.Lconcat ls -> List.fold_left (fun a l -> a + go l) 0 ls
  in
  go lv

let scatter rd (wr : writer) ~blocking ~definite (d : Elab.t) lv av =
  let total = lv_width d lv in
  let a = resize av total in
  (* LSB-first across concat pieces, mirroring [Sim.lv_pieces]. *)
  let rec go off = function
    | Elab.Lnet id ->
      let wn = d.Elab.nets.(id).Elab.width in
      wr ~blocking ~definite id (select a ~hi:(off + wn - 1) ~lo:off);
      off + wn
    | Elab.Lrange (id, hi, lo) ->
      let wn = hi - lo + 1 in
      let piece = select a ~hi:(off + wn - 1) ~lo:off in
      wr ~blocking ~definite id (insert (rd id) piece ~at:lo);
      off + wn
    | Elab.Lindex (id, ix) ->
      let piece = select a ~hi:off ~lo:off in
      let wn = d.Elab.nets.(id).Elab.width in
      let ai = eval rd d ix in
      (match to_bv ai with
       | Some bvi ->
         (match Bv.to_int bvi with
          | Some i when i < wn ->
            wr ~blocking ~definite id (insert (rd id) piece ~at:i)
          | _ -> () (* an out-of-range index write is discarded *))
       | None -> wr ~blocking ~definite id (weaken (rd id) piece));
      off + 1
    | Elab.Lconcat ls -> List.fold_left go off (List.rev ls)
  in
  ignore (go 0 lv)

(* Does the label provably (mis)match the selector under case
   equality?  Bits whose plane pair both sides know decide it. *)
let label_status sel lbl =
  let lbl = resize lbl sel.w in
  if wide sel then `Unknown
  else begin
    let k = pair_known sel land pair_known lbl in
    if k land ((sel.v lxor lbl.v) lor (sel.u lxor lbl.u)) <> 0 then `Miss
    else if k = mask sel.w then `Hit
    else `Unknown
  end

let rec exec rd (wr : writer) ~def (d : Elab.t) (s : Elab.estmt) =
  match s with
  | Elab.Nop -> ()
  | Elab.Block ss -> List.iter (exec rd wr ~def d) ss
  | Elab.Blocking (lv, e) ->
    scatter rd wr ~blocking:true ~definite:def d lv (eval rd d e)
  | Elab.Nonblocking (lv, e) ->
    scatter rd wr ~blocking:false ~definite:def d lv (eval rd d e)
  | Elab.If (c, t, e) ->
    (match truth (eval rd d c) with
     | `T -> exec rd wr ~def d t
     | `F -> (match e with Some e -> exec rd wr ~def d e | None -> ())
     | `U ->
       exec rd wr ~def:false d t;
       (match e with Some e -> exec rd wr ~def:false d e | None -> ()))
  | Elab.Case (sel, items, dflt) ->
    let asel = eval rd d sel in
    let rec arms ~def items =
      match items with
      | [] -> (match dflt with Some b -> exec rd wr ~def d b | None -> ())
      | (labels, body) :: rest ->
        let sts = List.map (fun l -> label_status asel (eval rd d l)) labels in
        if List.for_all (fun s -> s = `Miss) sts then arms ~def rest
        else if def && List.exists (fun s -> s = `Hit) sts then
          exec rd wr ~def d body
        else begin
          (* This arm may or may not be taken; later arms too. *)
          exec rd wr ~def:false d body;
          if List.exists (fun s -> s = `Hit) sts then ()
          else arms ~def:false rest
        end
    in
    arms ~def items

(* ------------------------------------------------------------------ *)
(* Engine: settle and step                                            *)
(* ------------------------------------------------------------------ *)

type ctx = {
  d : Elab.t;
  u : Compile.units;
  tops : bool array;  (** unconstrained nets: inputs, frees, ties, clock, reset *)
  cyclic : bool array;  (** net sits on a comb cycle: never overwrite *)
  order : int array;  (** unit ids, comb-dependency order from the SCCs *)
  pins : Bv.t option array;  (** protocol pins (reset during the phases) *)
}

let nets_count (d : Elab.t) = Array.length d.Elab.nets
let net_width (d : Elab.t) id = d.Elab.nets.(id).Elab.width

let make_reader ctx env id =
  match ctx.pins.(id) with
  | Some bv -> of_bv bv
  | None -> if ctx.tops.(id) then top (net_width ctx.d id) else env.(id)

(* [frontier]: overwrite acyclic nets with freshly evaluated values
   (the next settled state); otherwise accumulate by join (the [all]
   analysis, where transients are program points too). *)
let settle ctx env ~frontier =
  let n = nets_count ctx.d in
  let uc = ctx.u.Compile.unit_count in
  let inq = Array.make uc false in
  let q = Queue.create () in
  let enqueue t =
    if not inq.(t) then begin
      inq.(t) <- true;
      Queue.add t q
    end
  in
  Array.iter enqueue ctx.order;
  let budget = ref ((16 * uc) + 64) in
  let touch id =
    Array.iter enqueue ctx.u.Compile.readers.(id)
  in
  let rd = make_reader ctx env in
  let changed = ref false in
  let store id a =
    let a = norm (resize a (net_width ctx.d id)) in
    if not (equal_av env.(id) a) then begin
      env.(id) <- a;
      changed := true;
      touch id
    end
  in
  let write_join id a = store id (join env.(id) (resize a (net_width ctx.d id))) in
  let write ~over id a =
    if ctx.tops.(id) || ctx.pins.(id) <> None then ()
    else if frontier && over && not ctx.cyclic.(id) then store id a
    else write_join id a
  in
  let comb_writer ~blocking:_ ~definite id a = write ~over:definite id a in
  let run_unit t =
    if t < n then begin
      (* Net resolution unit. *)
      if ctx.u.Compile.drivers.(t) <> [] && not ctx.tops.(t)
         && ctx.pins.(t) = None
      then begin
        let wn = net_width ctx.d t in
        let contrib (lv, e) =
          let a = resize (eval rd ctx.d e) (lv_width ctx.d lv) in
          let acc = ref (all_z_av wn) in
          let rec go off = function
            | Elab.Lnet id ->
              let w = net_width ctx.d id in
              if id = t then acc := select a ~hi:(off + w - 1) ~lo:off;
              off + w
            | Elab.Lrange (id, hi, lo) ->
              let w = hi - lo + 1 in
              if id = t then
                acc := insert !acc (select a ~hi:(off + w - 1) ~lo:off) ~at:lo;
              off + w
            | Elab.Lindex (id, ix) ->
              if id = t then begin
                let piece = select a ~hi:off ~lo:off in
                match to_bv (eval rd ctx.d ix) with
                | Some bvi ->
                  (match Bv.to_int bvi with
                   | Some i when i < wn -> acc := insert !acc piece ~at:i
                   | _ -> ())
                | None -> acc := weaken !acc piece
              end;
              off + 1
            | Elab.Lconcat ls -> List.fold_left go off (List.rev ls)
          in
          ignore (go 0 lv);
          !acc
        in
        match ctx.u.Compile.drivers.(t) with
        | [] -> ()
        | [ one ] -> write ~over:true t (contrib one)
        | many ->
          let a =
            List.fold_left
              (fun acc dr -> resolve acc (contrib dr))
              (all_z_av wn) many
          in
          write ~over:true t a
      end
    end
    else exec rd comb_writer ~def:true ctx.d ctx.u.Compile.comb.(t - n)
  in
  while not (Queue.is_empty q) do
    let t = Queue.pop q in
    inq.(t) <- false;
    decr budget;
    if !budget < 0 then begin
      (* Give up: top out whatever the stuck units write. *)
      let ids =
        if t < n then [ t ]
        else Elab.stmt_writes ctx.u.Compile.comb.(t - n)
      in
      List.iter
        (fun id ->
          if not (ctx.tops.(id) || ctx.pins.(id) <> None) then begin
            let tp = top (net_width ctx.d id) in
            if not (equal_av env.(id) tp) then begin
              env.(id) <- tp;
              changed := true
            end
          end)
        ids
    end
    else run_unit t
  done;
  !changed

(* Fire edge-triggered processes and commit their nonblocking writes.
   [procs] lists (process index, fires definitely); [overwrite]
   enables the phase-A semantics where a definite commit replaces the
   register's previous abstraction.  [record_blocking] folds seq
   blocking overlays into the environment — the [all] analysis must,
   since compiled seq bodies read them through [op_loads]. *)
let fire_seq ctx env ~procs ~overwrite ~record_blocking =
  let nba : (int, av * bool) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (pi, d0) ->
      match ctx.d.Elab.processes.(pi) with
      | Elab.Seq (_, body) ->
        let overlay : (int, av) Hashtbl.t = Hashtbl.create 8 in
        let rd id =
          match Hashtbl.find_opt overlay id with
          | Some a -> a
          | None -> make_reader ctx env id
        in
        let wr ~blocking ~definite id a =
          if ctx.tops.(id) || ctx.pins.(id) <> None then ()
          else begin
            let a = norm (resize a (net_width ctx.d id)) in
            if blocking then begin
              let nv = if definite then a else join (rd id) a in
              Hashtbl.replace overlay id nv;
              if record_blocking then env.(id) <- join env.(id) nv
            end
            else begin
              let definite = definite && d0 in
              match Hashtbl.find_opt nba id with
              | None -> Hashtbl.replace nba id (a, definite)
              | Some (prev, dp) ->
                Hashtbl.replace nba id (blur (join prev a), dp || definite)
            end
          end
        in
        exec rd wr ~def:true ctx.d body
      | Elab.Assign _ | Elab.Comb _ -> ())
    procs;
  let changed = ref false in
  Hashtbl.iter
    (fun id (a, definite) ->
      let a = norm (resize a (net_width ctx.d id)) in
      let nv = if overwrite && definite then a else join env.(id) a in
      if not (equal_av env.(id) nv) then begin
        env.(id) <- nv;
        changed := true
      end)
    nba;
  !changed

(* ------------------------------------------------------------------ *)
(* Analyses                                                           *)
(* ------------------------------------------------------------------ *)

type invariants = {
  design : Elab.t;
  all : av array;
  steady : av array;
  run : av array;
  tops : bool array;
  clock : int option;
  reset : int option;
  run_distinct : bool;
      (** the protocol analysis ran (clock and reset were identified);
          when false, [run] is just [all] *)
  latch_free : bool;
      (** no combinational cycles and no incomplete comb assignments:
          every comb net is memoryless, so [steady] is strictly
          tighter than [all] *)
}

(* The subset of [Translate.parse_directives] this pass needs, without
   its hard failures: clock/reset names, frees and ties. *)
let controls (d : Elab.t) =
  let clock = ref None and reset = ref None in
  let frees = Hashtbl.create 8 and ties = Hashtbl.create 8 in
  let words s = String.split_on_char ' ' s |> List.filter (( <> ) "") in
  let handle prefix payload =
    let qualify n = if prefix = "" then n else prefix ^ "." ^ n in
    match words payload with
    | [ "clock"; n ] -> if !clock = None then clock := Some (qualify n)
    | [ "reset"; n ] -> if !reset = None then reset := Some (qualify n)
    | [ "free"; n ] -> Hashtbl.replace frees (qualify n) ()
    | [ "tie"; n; _ ] -> Hashtbl.replace ties (qualify n) ()
    | _ -> ()
  in
  List.iter
    (fun payload ->
      match String.index_opt payload ':' with
      | Some i when i + 1 < String.length payload && payload.[i + 1] = ' ' ->
        handle
          (String.sub payload 0 i)
          (String.sub payload (i + 2) (String.length payload - i - 2))
      | Some _ | None -> handle "" payload)
    d.Elab.directives;
  Array.iter
    (fun (net : Elab.enet) ->
      List.iter
        (fun attr ->
          match words attr with
          | [ "free" ] -> Hashtbl.replace frees net.Elab.name ()
          | [ "tie"; _ ] -> Hashtbl.replace ties net.Elab.name ()
          | _ -> ())
        net.Elab.attrs)
    d.Elab.nets;
  (!clock, !reset, frees, ties)

let power_on (d : Elab.t) tops =
  Array.map
    (fun (net : Elab.enet) ->
      let w = net.Elab.width in
      if tops.(net.Elab.id) || w > limit then top w
      else
        match net.Elab.kind with
        | Ast.Reg -> of_bv (Bv.all_x w)
        | Ast.Wire -> of_bv (Bv.all_z w))
    d.Elab.nets

let seq_proc_indices (d : Elab.t) =
  let acc = ref [] in
  Array.iteri
    (fun i p -> match p with Elab.Seq _ -> acc := i :: !acc | _ -> ())
    d.Elab.processes;
  List.rev !acc

let clocked_by (d : Elab.t) pi clock_id =
  match d.Elab.processes.(pi) with
  | Elab.Seq (edges, _) ->
    List.exists (fun (e, id) -> e = Ast.Posedge && id = clock_id) edges
  | _ -> false

(* Kleene iteration to a fixpoint with periodic interval widening.
   [step] must only grow [env] (all its writes are joins). *)
let fixpoint env (step : unit -> bool) =
  let iter = ref 0 in
  let continue_ = ref true in
  while !continue_ && !iter < 1000 do
    incr iter;
    let prev = if !iter >= 8 then Array.copy env else [||] in
    let changed = step () in
    if !iter >= 8 then
      Array.iteri
        (fun i a ->
          let wa = widen ~prev:prev.(i) a in
          if not (equal_av wa a) then env.(i) <- wa)
        env;
    if not changed then continue_ := false
  done

let analyze ?clock ?reset ?(reset_cycles = 1) (d : Elab.t) =
  let n = nets_count d in
  let u = Compile.units d in
  let dclock, dreset, frees, ties = controls d in
  let clock = match clock with Some _ -> clock | None -> dclock in
  let reset = match reset with Some _ -> reset | None -> dreset in
  let find name = Hashtbl.find_opt d.Elab.by_name name in
  let clock_id = Option.bind clock find in
  let reset_id = Option.bind reset find in
  let tops = Array.make n false in
  Array.iteri (fun i b -> if b then tops.(i) <- true) d.Elab.top_inputs;
  (* A net declared free in a reused module may be strapped by the
     instantiating wrapper (a configured SKU): once it has a driver it
     keeps the driver's semantics instead of going unconstrained —
     this is exactly what lets the analysis prove a strapped cone
     constant. *)
  let driven = Array.make n false in
  Array.iter
    (fun p ->
      let ws =
        match p with
        | Elab.Assign (lv, _) -> Elab.lv_nets lv
        | Elab.Comb body | Elab.Seq (_, body) -> Elab.stmt_writes body
      in
      List.iter (fun id -> driven.(id) <- true) ws)
    d.Elab.processes;
  Array.iter
    (fun (net : Elab.enet) ->
      if
        (Hashtbl.mem frees net.Elab.name || Hashtbl.mem ties net.Elab.name)
        && not driven.(net.Elab.id)
      then tops.(net.Elab.id) <- true)
    d.Elab.nets;
  Option.iter (fun id -> tops.(id) <- true) clock_id;
  Option.iter (fun id -> tops.(id) <- true) reset_id;
  (* Comb-dependency order and cycle membership from the SCCs. *)
  let graph = Dataflow.comb_graph d in
  let sccs = Dataflow.sccs graph in
  let cyclic = Array.make n false in
  List.iter
    (fun comp ->
      match comp with
      | [ x ] -> if Dataflow.has_self_edge graph x then cyclic.(x) <- true
      | xs -> List.iter (fun x -> cyclic.(x) <- true) xs)
    sccs;
  (* Driver units in dependency order (sccs is reverse topological:
     try both net orders; joins make either sound, dependency-first
     just converges in fewer sweeps), then the comb blocks. *)
  let net_order = List.concat (List.rev sccs) in
  let order =
    Array.of_list
      (List.filter (fun id -> u.Compile.drivers.(id) <> []) net_order
      @ List.init (Array.length u.Compile.comb) (fun i -> n + i))
  in
  let mk_pins () = Array.make n None in
  let ctx = { d; u; tops; cyclic; order; pins = mk_pins () } in
  (* --- [all]: every program point, any stimulus ------------------- *)
  let all_env = power_on d tops in
  let all_procs = List.map (fun pi -> (pi, false)) (seq_proc_indices d) in
  fixpoint all_env (fun () ->
      let c1 = settle ctx all_env ~frontier:false in
      let c2 =
        fire_seq ctx all_env ~procs:all_procs ~overwrite:false
          ~record_blocking:true
      in
      c1 || c2);
  (* --- [steady]: every expression-evaluation point ----------------- *)
  (* When every comb net is memoryless (no cyclic SCC, no incomplete
     comb assignment latching state), the settle fixpoint is unique:
     a comb net's settled value is a pure function of register/input
     values, so its power-on Z and mid-settle transients can never be
     captured by anything.  Frontier settling then overwrites acyclic
     comb nets instead of joining their power-on plane in — which is
     what lets a tied-off cone be proven constant.  Registers still
     join their power-on X and every write, and blocking overlays are
     still recorded, so [steady] covers every value an expression can
     actually read.  Monotone despite the overwrites: comb inputs
     (registers, tops, upstream comb nets) only grow, and the
     abstract transfer functions are monotone. *)
  let latch_free =
    (not (Array.exists (fun c -> c) cyclic))
    && Array.for_all
         (fun p ->
           match p with
           | Elab.Comb body ->
             let complete = Dataflow.must_assign_set body in
             List.for_all
               (fun id -> Dataflow.Ids.mem id complete)
               (Elab.stmt_writes body)
           | Elab.Assign _ | Elab.Seq _ -> true)
         d.Elab.processes
  in
  let steady_env =
    if not latch_free then Array.copy all_env
    else begin
      let env = power_on d tops in
      ignore (settle ctx env ~frontier:true);
      fixpoint env (fun () ->
          let c1 =
            fire_seq ctx env ~procs:all_procs ~overwrite:false
              ~record_blocking:true
          in
          let c2 = settle ctx env ~frontier:true in
          c1 || c2);
      env
    end
  in
  (* --- [run]: the translate/replay protocol ----------------------- *)
  let run_distinct = clock_id <> None && reset_id <> None in
  let run_env =
    if not run_distinct then Array.copy all_env
    else begin
      let clock_id = Option.get clock_id and reset_id = Option.get reset_id in
      let pins = mk_pins () in
      let ctx = { ctx with pins } in
      let clocked =
        List.filter (fun pi -> clocked_by d pi clock_id) (seq_proc_indices d)
      in
      let fire_def = List.map (fun pi -> (pi, true)) clocked in
      let env = power_on d tops in
      (* Phase A: reset held high for [reset_cycles] posedge steps. *)
      pins.(reset_id) <- Some (Bv.of_int ~width:1 1);
      ignore (settle ctx env ~frontier:true);
      for _ = 1 to reset_cycles do
        ignore
          (fire_seq ctx env ~procs:fire_def ~overwrite:true
             ~record_blocking:false);
        ignore (settle ctx env ~frontier:true)
      done;
      (* Reset release: the protocol pins it low from here on. *)
      pins.(reset_id) <- Some (Bv.of_int ~width:1 0);
      ignore (settle ctx env ~frontier:true);
      (* Phase B: accumulate the observation points.  Each iteration
         steps a frontier copy and joins it back. *)
      fixpoint env (fun () ->
          let t = Array.copy env in
          ignore
            (fire_seq ctx t ~procs:fire_def ~overwrite:true
               ~record_blocking:false);
          ignore (settle ctx t ~frontier:true);
          let changed = ref false in
          Array.iteri
            (fun i a ->
              let j = join env.(i) a in
              if not (equal_av env.(i) j) then begin
                env.(i) <- j;
                changed := true
              end)
            t;
          !changed);
      env
    end
  in
  { design = d; all = all_env; steady = steady_env; run = run_env; tops;
    clock = clock_id; reset = reset_id; run_distinct; latch_free }

(* ------------------------------------------------------------------ *)
(* Consumers                                                          *)
(* ------------------------------------------------------------------ *)

let facts inv =
  let consts = ref [] in
  Array.iteri
    (fun id a ->
      if not inv.tops.(id) then
        match to_bv a with
        | Some bv -> consts := (id, bv) :: !consts
        | None -> ())
    inv.steady;
  Compile.make_facts inv.design (List.rev !consts)

let admit inv (tr : Avp_fsm.Translate.result) =
  if not inv.run_distinct then None
  else begin
    let checks =
      Array.map
        (fun (b : Avp_fsm.Translate.binding) ->
          let a = inv.run.(b.Avp_fsm.Translate.net.Elab.id) in
          fun x -> x land a.kv = a.v && x >= a.lo && x <= a.hi)
        tr.Avp_fsm.Translate.state_bindings
    in
    Some
      (fun (vals : int array) ->
        let ok = ref true in
        Array.iteri (fun i chk -> if not (chk vals.(i)) then ok := false) checks;
        !ok)
  end

(* A mutant provably diverges when some checked net has a bit (or a
   disjoint interval) proven differently in the two protocol
   invariants: the first post-reset observation already differs, so
   any tour kills it. *)
let divergence ~nets pristine mutant =
  if not (pristine.run_distinct && mutant.run_distinct) then None
  else begin
    let result = ref None in
    List.iter
      (fun name ->
        if !result = None then
          match
            ( Hashtbl.find_opt pristine.design.Elab.by_name name,
              Hashtbl.find_opt mutant.design.Elab.by_name name )
          with
          | Some pi, Some mi ->
            let p = pristine.run.(pi) and m = mutant.run.(mi) in
            if p.w = m.w && not (wide p) then begin
              let kv = p.kv land m.kv land (p.v lxor m.v) in
              let ku = p.ku land m.ku land (p.u lxor m.u) in
              let disjoint =
                defined p && defined m && (p.hi < m.lo || m.hi < p.lo)
              in
              if kv <> 0 || ku <> 0 || disjoint then
                result :=
                  Some
                    ( name,
                      if disjoint then
                        Printf.sprintf
                          "proven ranges [%d,%d] and [%d,%d] never meet"
                          p.lo p.hi m.lo m.hi
                      else
                        Printf.sprintf
                          "bit %d proven to differ at every cycle"
                          (let k = if kv <> 0 then kv else ku in
                           let i = ref 0 in
                           while k lsr !i land 1 = 0 do incr i done;
                           !i) )
            end
          | _ -> ())
      nets;
    !result
  end

(* ------------------------------------------------------------------ *)
(* Findings                                                           *)
(* ------------------------------------------------------------------ *)

let net_loc = Dataflow.net_loc

let has_writer (d : Elab.t) u id =
  u.Compile.drivers.(id) <> []
  || Array.exists
       (fun p ->
         match p with
         | Elab.Comb s | Elab.Seq (_, s) -> List.mem id (Elab.stmt_writes s)
         | Elab.Assign _ -> false)
       d.Elab.processes

let constant_net_findings inv =
  let d = inv.design in
  let u = Compile.units d in
  let acc = ref [] in
  Array.iteri
    (fun id a ->
      if not inv.tops.(id) then
        match to_bv a with
        | Some bv when has_writer d u id ->
          let net = d.Elab.nets.(id) in
          acc :=
            Finding.make ~net_id:id ~net:net.Elab.name ~loc:(net_loc d id)
              Finding.Warning "constant-net"
              (Printf.sprintf
                 "proven to hold %s in every reachable evaluation"
                 (Bv.to_string bv))
            :: !acc
        | _ -> ())
    inv.steady;
  !acc

let unreachable_branch_findings inv =
  let d = inv.design in
  let env = inv.run in
  let rd id = if inv.tops.(id) then top (net_width d id) else env.(id) in
  let acc = ref [] in
  let report pi what cond =
    acc :=
      Finding.make ~loc:d.Elab.process_locs.(pi) Finding.Warning
        "unreachable-branch"
        (Printf.sprintf "%s of '%s' can never execute%s" what
           (Dataflow.expr_str d cond)
           (if inv.run_distinct then " after reset" else ""))
      :: !acc
  in
  let rec walk pi s =
    match s with
    | Elab.Nop | Elab.Blocking _ | Elab.Nonblocking _ -> ()
    | Elab.Block ss -> List.iter (walk pi) ss
    | Elab.If (c, t, e) ->
      (match truth (eval rd d c) with
       | `T ->
         (match e with Some _ -> report pi "else-branch" c | None -> ());
         walk pi t
       | `F ->
         report pi "then-branch" c;
         (match e with Some e -> walk pi e | None -> ())
       | `U ->
         walk pi t;
         (match e with Some e -> walk pi e | None -> ()))
    | Elab.Case (sel, items, dflt) ->
      let asel = eval rd d sel in
      List.iter
        (fun (labels, body) ->
          let sts =
            List.map (fun l -> label_status asel (eval rd d l)) labels
          in
          if sts <> [] && List.for_all (( = ) `Miss) sts then
            report pi "case-arm" sel
          else walk pi body)
        items;
      (match dflt with Some b -> walk pi b | None -> ())
  in
  Array.iteri
    (fun pi p ->
      match p with
      | Elab.Comb s | Elab.Seq (_, s) -> walk pi s
      | Elab.Assign _ -> ())
    d.Elab.processes;
  !acc

(* A reset branch that assigns the value the register provably holds
   at every post-reset cycle anyway. *)
let redundant_reset_findings inv =
  match inv.reset with
  | None -> []
  | Some reset_id when inv.run_distinct ->
    let d = inv.design in
    let env = inv.run in
    let rd id = if inv.tops.(id) then top (net_width d id) else env.(id) in
    let acc = ref [] in
    let check pi body =
      let wr ~blocking:_ ~definite:_ id a =
        match (to_bv a, to_bv env.(id)) with
        | Some c, Some inv_c when Bv.equal c inv_c && not inv.tops.(id) ->
          let net = d.Elab.nets.(id) in
          acc :=
            Finding.make ~net_id:id ~net:net.Elab.name
              ~loc:d.Elab.process_locs.(pi) Finding.Warning "redundant-reset"
              (Printf.sprintf
                 "reset assigns %s, which the register provably holds at \
                  every post-reset cycle anyway"
                 (Bv.to_string c))
            :: !acc
        | _ -> ()
      in
      exec rd wr ~def:true d body
    in
    Array.iteri
      (fun pi p ->
        match p with
        | Elab.Seq (_, Elab.If (Elab.Net c, t, _)) when c = reset_id ->
          check pi t
        | Elab.Seq (_, Elab.Block [ Elab.If (Elab.Net c, t, _) ])
          when c = reset_id ->
          check pi t
        | _ -> ())
      d.Elab.processes;
    !acc
  | Some _ -> []

let findings inv =
  Finding.sort
    (constant_net_findings inv
    @ unreachable_branch_findings inv
    @ redundant_reset_findings inv)

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

(* Verilog-flavoured bit string, MSB first: 0/1/x/z for fully known
   bits, '-' for a bit proven defined (no x/z) of unknown value, '?'
   for a bit nothing is known about; the value-plane interval follows
   when it carries information beyond the bits. *)
let av_str a =
  if wide a then "top"
  else begin
    let b = Buffer.create (a.w + 24) in
    Buffer.add_string b (string_of_int a.w);
    Buffer.add_string b "'b";
    for i = a.w - 1 downto 0 do
      let kv = a.kv lsr i land 1 = 1 and ku = a.ku lsr i land 1 = 1 in
      let v = a.v lsr i land 1 = 1 and u = a.u lsr i land 1 = 1 in
      Buffer.add_char b
        (if ku && u && kv then (if v then 'x' else 'z')
         else if ku && (not u) && kv then (if v then '1' else '0')
         else if ku && not u then '-'
         else '?')
    done;
    (* The interval is implied when every value-plane bit is known. *)
    if a.kv <> mask a.w && (a.lo > 0 || a.hi < mask a.w) then
      Buffer.add_string b (Printf.sprintf " in [%d,%d]" a.lo a.hi);
    Buffer.contents b
  end

let interesting a = not (equal_av a (top a.w))
