(* Front end of the static-analysis subsystem: runs every registered
   pass over an elaborated design (or an FSM model), then filters and
   orders the findings deterministically. *)

open Avp_hdl

(* rule name, default severity, one-line description — the single
   source of truth for `avp lint`'s manpage and the README table. *)
let rules : (string * Finding.severity * string) list =
  [
    ("comb-loop", Finding.Error,
     "combinational cycle: the design can never settle");
    ("multiple-drivers", Finding.Error,
     "net driven by more than one non-tri-state source");
    ("seq-and-comb", Finding.Error,
     "net written by both edge-triggered and combinational logic");
    ("mixed-assignment", Finding.Error,
     "blocking and nonblocking assignment mixed on one net");
    ("sched-race", Finding.Warning,
     "blocking and nonblocking procedural writes race on one net; both \
      positions reported");
    ("sched-race-edge", Finding.Error,
     "two processes on the same clock edge write one net: nonblocking \
      commit order is unspecified");
    ("latch", Finding.Warning,
     "combinational process does not assign a net on every path");
    ("x-source", Finding.Warning,
     "register can latch X/Z reaching it from a tri-state, undriven or \
      explicit x/z source");
    ("width-mismatch", Finding.Warning,
     "assignment truncates or comparison mixes operand widths");
    ("reg-never-written", Finding.Warning, "declared reg has no driver");
    ("wire-never-driven", Finding.Warning,
     "wire is read but never driven");
    ("unused-net", Finding.Warning,
     "net is never read outside its own drivers");
    ("fsm-unreachable", Finding.Warning,
     "state-variable value unreachable from reset");
    ("fsm-sink", Finding.Warning,
     "state every choice combination maps to itself");
    ("fsm-dead-choice", Finding.Warning,
     "choice variable never affects any successor");
    ("fsm-choice-overlap", Finding.Warning,
     "distinct choice combinations are behaviourally identical");
    ("fsm-shadowed-guard", Finding.Warning,
     "rule guard subsumed by an earlier guard of the same if-chain");
    ("fsm-dead-guard", Finding.Warning,
     "rule guard is constant and can never fire (or always fires)");
    ("fsm-check-capped", Finding.Warning,
     "abstract FSM exploration exceeded its budget; checks skipped");
    ("constant-net", Finding.Warning,
     "written net proven constant at every reachable point (requires \
      --absint)");
    ("unreachable-branch", Finding.Warning,
     "branch guard proven one-sided on every post-reset cycle (requires \
      --absint)");
    ("redundant-reset", Finding.Warning,
     "reset branch assigns a value the register provably holds anyway \
      (requires --absint)");
  ]

let rule_names = List.map (fun (n, _, _) -> n) rules

let is_rule name = List.mem name rule_names

let severity_str = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

(* The README's rules table is generated from [rules] (see
   `avp lint --rules-md` and the drift test in test_analysis): edit
   the list above, never the README by hand. *)
let rules_markdown () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "| rule | severity | description |\n";
  Buffer.add_string buf "| --- | --- | --- |\n";
  List.iter
    (fun (name, sev, desc) ->
      Buffer.add_string buf
        (Printf.sprintf "| `%s` | %s | %s |\n" name (severity_str sev) desc))
    rules;
  Buffer.contents buf

(* [only] wins over [ignore] when both are given; empty [only] means
   "all rules". *)
let filter ?(only = []) ?(ignore = []) findings =
  List.filter
    (fun (f : Finding.t) ->
      (match only with [] -> true | _ -> List.mem f.Finding.rule only)
      && not (List.mem f.Finding.rule ignore))
    findings

(* ------------------------------------------------------------------ *)
(* Netlist analysis                                                   *)
(* ------------------------------------------------------------------ *)

let run ?only ?ignore ?(absint = false) (d : Elab.t) : Finding.t list =
  let infos = Dataflow.proc_infos d in
  let findings =
    List.concat
      [
        Netlist_passes.comb_loop d infos;
        Netlist_passes.latch d infos;
        Netlist_passes.x_source d infos;
        Netlist_passes.width_check d infos;
        Netlist_passes.races d;
        Netlist_passes.structural d;
      ]
  in
  let findings =
    (* The abstract-interpretation passes need a whole fixpoint run;
       opt-in so plain lint stays fast on large fuzzed designs. *)
    if absint then findings @ Absint.findings (Absint.analyze d)
    else findings
  in
  Finding.sort (filter ?only ?ignore findings)

(* ------------------------------------------------------------------ *)
(* FSM analysis                                                       *)
(* ------------------------------------------------------------------ *)

let run_model ?only ?ignore ?max_evals (m : Avp_fsm.Model.t) :
    Finding.t list =
  let r = Fsm_check.analyze ?max_evals m in
  Finding.sort (filter ?only ?ignore (Fsm_check.findings r))

let errors findings =
  List.filter (fun f -> f.Finding.severity = Finding.Error) findings

let warnings findings =
  List.filter (fun f -> f.Finding.severity = Finding.Warning) findings

(* Exit code contract shared with the CLI and CI gate: 0 clean,
   1 warnings under --strict, 2 errors. *)
let exit_code ~strict findings =
  if errors findings <> [] then 2
  else if strict && warnings findings <> [] then 1
  else 0
