(** Netlist-level analysis passes over [Elab.t], built on
    {!Dataflow}.  Each pass returns plain findings; {!Analysis} owns
    selection, ordering and output. *)

open Avp_hdl

val comb_loop : Elab.t -> Dataflow.proc_info array -> Finding.t list
(** Combinational cycles (error), via SCC over the dependency graph;
    the finding's path lists the nets on the cycle. *)

val latch : Elab.t -> Dataflow.proc_info array -> Finding.t list
(** Nets a combinational process assigns on some but not all paths
    (warning), with a concrete uncovered path as witness.  Nets
    annotated [// avp state] are intentional latches and exempt. *)

val x_source : Elab.t -> Dataflow.proc_info array -> Finding.t list
(** Forward taint from Z/X-capable sources (multi-driver tri-state
    buses, undriven wires, never-written registers, explicit 'bx/'bz
    literals) through combinational logic into sequential latch
    points (warning), reporting the taint path. *)

val width_check : Elab.t -> Dataflow.proc_info array -> Finding.t list
(** Truncating assignments and mixed-width comparisons (warning),
    using significant widths so unsized 32-bit literals do not flood
    the report. *)

val races : Elab.t -> Finding.t list
(** Scheduling hazards, with both assignment positions in the
    message: a blocking and a nonblocking procedural write to one net
    (warning [sched-race]), and two edge-triggered processes writing
    one net on the same edge of the same clock (error
    [sched-race-edge]) — in both cases the observed value depends on
    unspecified scheduler ordering. *)

val structural : Elab.t -> Finding.t list
(** The original {!Lint} rules, re-dressed with net ids and source
    positions ({!Dataflow.net_loc}: declaration, else first
    assignment site). *)
