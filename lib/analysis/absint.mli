(** Abstract interpretation: proven per-net invariants.

    A fixpoint over the sequential step function on a product domain
    per net — known bits of both packed planes (the 4-state
    constant/X plane as the degenerate fully-known case) plus an
    integer value-plane interval — with comb settling ordered by the
    {!Dataflow} SCC condensation and interval widening on the
    sequential iteration.

    Two environments come out:

    - {b all}: holds at every program point of every execution whose
      stimulus only pokes or forces unconstrained nets (power-on
      values, settle transients and seq-blocking overlays included) —
      the exact contract of {!Avp_hdl.Compile.facts}, so {!facts}
      feeds the kernel specializer directly.
    - {b run}: holds at every settled observation point of the
      translate/replay protocol (reset held, released, only the clock
      stepped) — what the state enumerator and the mutation campaign
      observe.

    Everything here is deterministic: no hashing of names, no
    wall-clock, no domain parallelism. *)

open Avp_logic
open Avp_hdl

type av = {
  w : int;  (** net width *)
  kv : int;  (** mask of value-plane bits with a proven value *)
  v : int;  (** their values; [v land kv = v] *)
  ku : int;  (** mask of unknown-plane bits with a proven value *)
  u : int;  (** their values; [u land ku = u] *)
  lo : int;  (** value-plane integer bounds (trivial when wide) *)
  hi : int;
}
(** Nets wider than {!Bv.packed_width_limit} are always top. *)

val top : int -> av
val of_bv : Bv.t -> av

val to_bv : av -> Bv.t option
(** The proven 4-state constant, when every bit of both planes is
    known. *)

val is_const : av -> bool

val defined : av -> bool
(** Every bit proven to carry a 0/1 (no X, no Z). *)

val join : av -> av -> av
val truth : av -> [ `T | `F | `U ]

type invariants = {
  design : Elab.t;
  all : av array;  (** net id -> every-program-point invariant
                       (power-on planes and settle transients joined
                       in) *)
  steady : av array;
      (** net id -> invariant over every value an expression can read
          (registers still include power-on X, but memoryless comb
          nets shed their power-on Z) — the environment {!facts}
          draws from.  Equals [all] unless [latch_free]. *)
  run : av array;  (** net id -> post-reset observation invariant *)
  tops : bool array;  (** nets left unconstrained (inputs, frees, ties,
                          clock, reset) *)
  clock : int option;
  reset : int option;
  run_distinct : bool;
      (** the protocol analysis ran (clock and reset were found); when
          false [run] is a copy of [all] *)
  latch_free : bool;
      (** no combinational cycles and no incomplete comb assignments:
          every comb net is memoryless, which is what makes the
          [steady] overwrite-settle sound *)
}

val analyze :
  ?clock:string -> ?reset:string -> ?reset_cycles:int -> Elab.t -> invariants
(** Clock and reset default to the design's [// avp clock/reset]
    directives; without both, only the [all] analysis runs.
    [reset_cycles] (default 1) mirrors {!Avp_fsm.Translate.translate}. *)

val facts : invariants -> Compile.facts
(** The proven constants of the [steady] environment, ready for
    {!Compile.specialize} / [Compile.create ?facts] /
    [Sliced.create ?facts]. *)

val admit : invariants -> Avp_fsm.Translate.result -> (int array -> bool) option
(** A sound frontier filter for {!Avp_enum.State_graph.enumerate}: a
    state valuation (in [state_bindings] order) passes iff every
    variable lies inside its proven known-bits/range invariant.
    Soundness means a truly reachable state is never rejected — the
    cross-validation suite asserts the filtered graph is identical.
    [None] when the protocol analysis did not run. *)

val divergence :
  nets:string list -> invariants -> invariants -> (string * string) option
(** [divergence ~nets pristine mutant] is [Some (net, why)] when some
    checked net's protocol invariants are disjoint (a bit proven to
    differ, or non-overlapping value ranges): every post-reset
    observation of the two designs differs on it, so any replay tour
    kills the mutant without simulating it. *)

val findings : invariants -> Finding.t list
(** The invariant-backed lint passes, {!Finding.sort}ed:
    [constant-net] (a written net proven constant everywhere),
    [unreachable-branch] (a guard proven one-sided on every post-reset
    cycle) and [redundant-reset] (the reset branch assigns a value the
    register provably holds anyway). *)

val av_str : av -> string
(** Verilog-flavoured rendering, MSB first: [0/1/x/z] for fully known
    bits, [-] for a bit proven defined of unknown value, [?] for an
    unconstrained bit; followed by the value-plane interval when it
    adds information ("4'b??-0 in [0,6]"). *)

val interesting : av -> bool
(** Strictly below top: the analysis proved something. *)

val net_loc : Elab.t -> int -> Ast.loc
(** A net's best source position: its declaration, else the first
    recorded assignment site ([Elab.write_sites]) — synthetic
    elaboration-introduced nets have no declaration line. *)
