(** Front end of the static-analysis subsystem: runs every registered
    pass, then filters and orders findings deterministically.  The
    exit-code contract here is shared by `avp lint` and the CI gate. *)

val rules : (string * Finding.severity * string) list
(** (rule name, default severity, one-line description) — the single
    source of truth for `avp lint`'s manpage and the README table. *)

val rule_names : string list

val is_rule : string -> bool

val rules_markdown : unit -> string
(** The rules table as GitHub markdown, generated from {!rules} — the
    README embeds it verbatim and a test asserts it never drifts. *)

val filter :
  ?only:string list -> ?ignore:string list -> Finding.t list ->
  Finding.t list
(** [only] wins over [ignore] when both are given; empty [only] means
    "all rules". *)

val run :
  ?only:string list -> ?ignore:string list -> ?absint:bool ->
  Avp_hdl.Elab.t -> Finding.t list
(** All netlist passes (comb-loop, latch, x-source, width, races,
    structural), sorted with {!Finding.sort}.  [absint] (default
    false) additionally runs the {!Absint} fixpoint and appends its
    invariant-backed findings (constant-net, unreachable-branch,
    redundant-reset). *)

val run_model :
  ?only:string list ->
  ?ignore:string list ->
  ?max_evals:int ->
  Avp_fsm.Model.t ->
  Finding.t list
(** The abstract FSM checks of {!Fsm_check}, sorted and filtered. *)

val errors : Finding.t list -> Finding.t list
val warnings : Finding.t list -> Finding.t list

val exit_code : strict:bool -> Finding.t list -> int
(** 0 clean, 1 warnings remain under [strict], 2 errors. *)
