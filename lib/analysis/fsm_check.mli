(** Model checker-lite over {!Avp_fsm.Model}.

    The transition function is a black box, so "static" means a
    cartesian abstract interpretation: one possibly-reachable value
    set per state variable, iterated to a fixpoint by evaluating
    [next] over the product of the sets for every choice combination.
    The abstraction over-approximates the concrete reachable set, so
    unreachability claims are sound: statically-unreachable is a
    subset of dynamically-unreachable (cross-checked against the
    enumerator on pp_control in the test suite).

    When the product exceeds the evaluation budget — or [next]
    raises, as HDL-backed models can on abstract states the simulator
    never produces — the analysis marks itself [capped] and emits no
    claims at all rather than unsound ones. *)

open Avp_fsm

type result = {
  model : Model.t;
  reachable_values : bool array array;
      (** state var index -> value -> possibly reachable *)
  sinks : int array list;
      (** abstract tuples every choice combination maps to itself;
          restricted to reachable states these coincide with
          [State_graph.absorbing_states] *)
  capped : bool;
  evals : int;  (** transition-function evaluations performed *)
  findings : Finding.t list;
      (** rules: [fsm-unreachable], [fsm-sink], [fsm-dead-choice],
          [fsm-choice-overlap]; or [fsm-check-capped] alone *)
}

val analyze : ?max_evals:int -> Model.t -> result
(** [max_evals] bounds total [next] evaluations (default 2,000,000). *)

val findings : result -> Finding.t list
