open Avp_hdl

type severity = Warning | Error

type t = {
  severity : severity;
  rule : string;
  net : string option;  (* net or FSM variable name *)
  net_id : int;  (* elaborated net id, or -1 when not net-anchored *)
  loc : Ast.loc option;
  message : string;
  path : string list;  (* taint / cycle path, source first *)
}

let make ?(net_id = -1) ?net ?loc ?(path = []) severity rule message =
  { severity; rule; net; net_id; loc; message; path }

let severity_rank = function Error -> 0 | Warning -> 1

let severity_string = function Warning -> "warning" | Error -> "error"

(* Deterministic total order: (severity, rule, net id, net name,
   position, message).  Byte-stable across runs, so golden tests and
   --json output never depend on pass or hash-table iteration order. *)
let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = Int.compare a.net_id b.net_id in
      if c <> 0 then c
      else
        let c =
          Option.compare String.compare a.net b.net
        in
        if c <> 0 then c
        else
          let line = function
            | None -> 0
            | Some l -> l.Ast.line
          in
          let c = Int.compare (line a.loc) (line b.loc) in
          if c <> 0 then c else String.compare a.message b.message

let sort findings = List.sort compare findings

let pp ?file ppf f =
  (match f.loc, file with
   | Some l, Some file when l.Ast.line > 0 ->
     Format.fprintf ppf "%s:%d: " file l.Ast.line
   | Some l, None when l.Ast.line > 0 -> Format.fprintf ppf "%d: " l.Ast.line
   | _, _ -> ());
  Format.fprintf ppf "%s: [%s]%s %s"
    (severity_string f.severity)
    f.rule
    (match f.net with Some n -> " " ^ n | None -> "")
    f.message;
  match f.path with
  | [] -> ()
  | p ->
    Format.fprintf ppf " (path: %s)" (String.concat " -> " p)

(* ------------------------------------------------------------------ *)
(* JSON                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_object ?file f =
  let b = Buffer.create 128 in
  let field ?(sep = true) name value =
    if sep then Buffer.add_string b ", ";
    Buffer.add_string b (Printf.sprintf "\"%s\": %s" name value)
  in
  let str s = "\"" ^ json_escape s ^ "\"" in
  Buffer.add_char b '{';
  field ~sep:false "severity" (str (severity_string f.severity));
  field "rule" (str f.rule);
  (match f.net with Some n -> field "net" (str n) | None -> ());
  (match file with Some fl -> field "file" (str fl) | None -> ());
  (match f.loc with
   | Some l when l.Ast.line > 0 ->
     field "line" (string_of_int l.Ast.line);
     field "col" (string_of_int l.Ast.col)
   | _ -> ());
  field "message" (str f.message);
  (if f.path <> [] then
     field "path"
       ("[" ^ String.concat ", " (List.map str f.path) ^ "]"));
  Buffer.add_char b '}';
  Buffer.contents b

let to_json ?file findings =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      Buffer.add_string b (to_json_object ?file f))
    findings;
  Buffer.add_string b "\n  ],\n";
  let count sev =
    List.length (List.filter (fun f -> f.severity = sev) findings)
  in
  Buffer.add_string b
    (Printf.sprintf "  \"errors\": %d,\n  \"warnings\": %d\n}\n" (count Error)
       (count Warning));
  Buffer.contents b
