(** Reusable dataflow scaffolding over the elaborated netlist:
    per-process def/use extraction, a net-level combinational
    dependency graph with Tarjan SCC, and a path-sensitive walker over
    [Elab.estmt] trees.  Every pass in this library is a client. *)

open Avp_hdl

type proc_kind = Kassign | Kcomb | Kseq

type proc_info = {
  index : int;  (** position in [Elab.t.processes] *)
  kind : proc_kind;
  loc : Ast.loc;
  reads : int list;  (** nets read: rhs, lvalue indices, conditions *)
  writes : int list;  (** nets written anywhere in the process *)
}

val proc_reads : Elab.process -> int list
val proc_writes : Elab.process -> int list

val net_loc : Elab.t -> int -> Ast.loc
(** A net's best source position: its declaration, else the first
    recorded assignment site ([Elab.write_sites]) — elaboration-
    introduced nets have no declaration line. *)

val proc_infos : Elab.t -> proc_info array

type graph = {
  n : int;
  succs : (int * int) list array;
      (** [succs.(src) = (dst, process index) list]: a combinational
          process reads [src] and writes [dst].  Sequential processes
          contribute no edges — a clocked register breaks the
          combinational path. *)
}

val comb_graph : ?infos:proc_info array -> Elab.t -> graph

val sccs : graph -> int list list
(** Tarjan's strongly-connected components, iterative so pathological
    chains from fuzzed designs cannot overflow the stack.  Reverse
    topological order; a component is cyclic iff it has more than one
    node or a self-edge. *)

val has_self_edge : graph -> int -> bool

val pp_eexpr : Elab.t -> Format.formatter -> Elab.eexpr -> unit
(** Expression printing with net names (long constants abbreviated). *)

val expr_str : Elab.t -> Elab.eexpr -> string

(** One step down a branch tree, innermost last. *)
type branch =
  | Then_of of Elab.eexpr
  | Else_of of Elab.eexpr
  | Case_arm of Elab.eexpr * Elab.eexpr list  (** selector, labels *)
  | Case_default of Elab.eexpr

val pp_branch : Elab.t -> Format.formatter -> branch -> unit

val path_str : Elab.t -> branch list -> string
(** ["unconditionally"], or ["when c1 && !(c2)"]. *)

val walk_assigns :
  Elab.estmt ->
  f:(branch list -> blocking:bool -> Elab.elv -> Elab.eexpr -> unit) ->
  unit
(** Visit every assignment with the stack of branches guarding it. *)

module Ids : Set.S with type elt = int

val must_assign_set : Elab.estmt -> Ids.t
(** Nets assigned in full on every path.  Partial writes (bit/range
    selects) conservatively do not count: they still latch the
    remaining bits. *)

val missing_path : Elab.estmt -> int -> branch list option
(** A concrete witness: one branch path along which the net is never
    fully assigned, or [None] when every path assigns it. *)

val expr_consts_acc :
  Avp_logic.Bv.t list -> Elab.eexpr -> Avp_logic.Bv.t list

val stmt_exprs_acc : Elab.eexpr list -> Elab.estmt -> Elab.eexpr list

val proc_exprs : Elab.process -> Elab.eexpr list
(** Every expression a process contains (rhs, conditions, selectors,
    labels, lvalue indices). *)

val bv_has_xz : Avp_logic.Bv.t -> bool
val bv_all_z : Avp_logic.Bv.t -> bool

val can_float : Elab.eexpr -> bool
(** The expression can release its drive: syntactically it can
    evaluate to all-Z.  [cond ? e : 'bz] is the canonical tri-state
    driver shape. *)
