(* Reusable dataflow scaffolding over the elaborated netlist: per-
   process def/use extraction, a net-level combinational dependency
   graph with Tarjan SCC, and a path-sensitive walker over
   [Elab.estmt] trees.  Every pass in this library is a client. *)

open Avp_hdl

type proc_kind = Kassign | Kcomb | Kseq

type proc_info = {
  index : int;
  kind : proc_kind;
  loc : Ast.loc;
  reads : int list;  (* nets read: rhs, lvalue indices, conditions *)
  writes : int list;  (* nets written anywhere in the process *)
}

let proc_reads (p : Elab.process) =
  match p with
  | Elab.Assign (lv, e) ->
    let rec lv_idx acc = function
      | Elab.Lnet _ | Elab.Lrange _ -> acc
      | Elab.Lindex (_, e) -> Elab.expr_nets e @ acc
      | Elab.Lconcat ls -> List.fold_left lv_idx acc ls
    in
    Elab.expr_nets e @ lv_idx [] lv
  | Elab.Comb s | Elab.Seq (_, s) -> Elab.stmt_reads s

let proc_writes (p : Elab.process) =
  match p with
  | Elab.Assign (lv, _) -> Elab.lv_nets lv
  | Elab.Comb s | Elab.Seq (_, s) -> Elab.stmt_writes s

(* A net's best source position: its declaration, else the first
   assignment site recorded during elaboration — synthetic nets
   (flattened port connections) have no declaration line, and a 0:0
   position helps nobody. *)
let net_loc (d : Elab.t) id =
  let decl = d.Elab.nets.(id).Elab.loc in
  if decl.Ast.line > 0 then decl
  else begin
    let found = ref decl in
    Array.iteri
      (fun pi sites ->
        List.iter
          (fun (nid, _, loc) ->
            if nid = id && !found.Ast.line <= 0 && loc.Ast.line > 0 then
              found := loc)
          sites;
        if
          !found.Ast.line <= 0
          && List.exists (fun (nid, _, _) -> nid = id) sites
          && d.Elab.process_locs.(pi).Ast.line > 0
        then found := d.Elab.process_locs.(pi))
      d.Elab.write_sites;
    !found
  end

let proc_infos (d : Elab.t) : proc_info array =
  Array.mapi
    (fun i p ->
      {
        index = i;
        kind =
          (match p with
           | Elab.Assign _ -> Kassign
           | Elab.Comb _ -> Kcomb
           | Elab.Seq _ -> Kseq);
        loc = d.Elab.process_locs.(i);
        reads = proc_reads p;
        writes = proc_writes p;
      })
    d.Elab.processes

(* ------------------------------------------------------------------ *)
(* Combinational dependency graph                                     *)
(* ------------------------------------------------------------------ *)

(* succs.(src) = [(dst, process index); ...]: a combinational process
   (continuous assignment or combinational always) reads [src] and writes
   [dst], so a change on [src] propagates to [dst] within the same
   cycle.  Sequential processes deliberately contribute no edges: a
   clocked register breaks the combinational path. *)
type graph = { n : int; succs : (int * int) list array }

let comb_graph ?(infos : proc_info array option) (d : Elab.t) : graph =
  let infos =
    match infos with Some i -> i | None -> proc_infos d
  in
  let n = Array.length d.Elab.nets in
  let succs = Array.make n [] in
  Array.iter
    (fun pi ->
      match pi.kind with
      | Kseq -> ()
      | Kassign | Kcomb ->
        List.iter
          (fun src ->
            List.iter
              (fun dst -> succs.(src) <- (dst, pi.index) :: succs.(src))
              pi.writes)
          pi.reads)
    infos;
  Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
  { n; succs }

(* Tarjan's strongly-connected components, iterative so pathological
   chains from fuzzed designs cannot overflow the OCaml stack.
   Returns components in reverse topological order; only components
   that contain a cycle (size > 1, or a self-edge) matter to
   comb-loop detection. *)
let sccs (g : graph) : int list list =
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let out = ref [] in
  (* Explicit DFS frames: (node, remaining successors). *)
  for root = 0 to g.n - 1 do
    if index.(root) < 0 then begin
      let frames = ref [ (root, ref g.succs.(root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !frames <> [] do
        match !frames with
        | [] -> ()
        | (v, succs) :: rest -> (
          match !succs with
          | (w, _) :: more ->
            succs := more;
            if index.(w) < 0 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              stack := w :: !stack;
              on_stack.(w) <- true;
              frames := (w, ref g.succs.(w)) :: !frames
            end
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
          | [] ->
            frames := rest;
            (match rest with
             | (parent, _) :: _ ->
               lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
             | [] -> ());
            if lowlink.(v) = index.(v) then begin
              let rec pop acc =
                match !stack with
                | [] -> acc
                | w :: tl ->
                  stack := tl;
                  on_stack.(w) <- false;
                  if w = v then w :: acc else pop (w :: acc)
              in
              out := pop [] :: !out
            end)
      done
    end
  done;
  List.rev !out

let has_self_edge (g : graph) v =
  List.exists (fun (w, _) -> w = v) g.succs.(v)

(* ------------------------------------------------------------------ *)
(* Pretty-printing elaborated expressions with net names              *)
(* ------------------------------------------------------------------ *)

let rec pp_eexpr (d : Elab.t) ppf (e : Elab.eexpr) =
  let name id = d.Elab.nets.(id).Elab.name in
  match e with
  | Elab.Const v ->
    let s = Avp_logic.Bv.to_string v in
    if String.length s <= 8 then Format.pp_print_string ppf s
    else Format.fprintf ppf "%d'b..." (Avp_logic.Bv.width v)
  | Elab.Net id -> Format.pp_print_string ppf (name id)
  | Elab.Index (id, e) ->
    Format.fprintf ppf "%s[%a]" (name id) (pp_eexpr d) e
  | Elab.Range (id, hi, lo) -> Format.fprintf ppf "%s[%d:%d]" (name id) hi lo
  | Elab.Unop (op, e) ->
    Format.fprintf ppf "%s%a" (Ast.unop_str op) (pp_eexpr d) e
  | Elab.Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" (pp_eexpr d) a (Ast.binop_str op)
      (pp_eexpr d) b
  | Elab.Ternary (c, a, b) ->
    Format.fprintf ppf "(%a ? %a : %a)" (pp_eexpr d) c (pp_eexpr d) a
      (pp_eexpr d) b
  | Elab.Concat es ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (pp_eexpr d))
      es
  | Elab.Repeat (n, e) -> Format.fprintf ppf "{%d{%a}}" n (pp_eexpr d) e

let expr_str d e = Format.asprintf "%a" (pp_eexpr d) e

(* ------------------------------------------------------------------ *)
(* Path-sensitive branch walker                                       *)
(* ------------------------------------------------------------------ *)

(* One step down the branch tree, innermost last. *)
type branch =
  | Then_of of Elab.eexpr
  | Else_of of Elab.eexpr
  | Case_arm of Elab.eexpr * Elab.eexpr list  (* selector, labels *)
  | Case_default of Elab.eexpr

let pp_branch d ppf = function
  | Then_of c -> pp_eexpr d ppf c
  | Else_of c -> Format.fprintf ppf "!(%a)" (pp_eexpr d) c
  | Case_arm (sel, labels) ->
    Format.fprintf ppf "%a == %a" (pp_eexpr d) sel
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "|")
         (pp_eexpr d))
      labels
  | Case_default sel -> Format.fprintf ppf "%a == <other>" (pp_eexpr d) sel

let path_str d path =
  match path with
  | [] -> "unconditionally"
  | p ->
    "when "
    ^ String.concat " && "
        (List.map (Format.asprintf "%a" (pp_branch d)) p)

(* Visit every assignment with the stack of branches guarding it. *)
let walk_assigns (s : Elab.estmt)
    ~(f : branch list -> blocking:bool -> Elab.elv -> Elab.eexpr -> unit) :
    unit =
  let rec go path s =
    match s with
    | Elab.Block ss -> List.iter (go path) ss
    | Elab.Blocking (lv, e) -> f (List.rev path) ~blocking:true lv e
    | Elab.Nonblocking (lv, e) -> f (List.rev path) ~blocking:false lv e
    | Elab.If (c, t, e) ->
      go (Then_of c :: path) t;
      (match e with None -> () | Some s -> go (Else_of c :: path) s)
    | Elab.Case (sel, items, dflt) ->
      List.iter
        (fun (labels, body) -> go (Case_arm (sel, labels) :: path) body)
        items;
      (match dflt with
       | None -> ()
       | Some s -> go (Case_default sel :: path) s)
    | Elab.Nop -> ()
  in
  go [] s

module Ids = Set.Make (Int)

(* Nets assigned in full on every path through [s].  Partial writes
   (bit/range selects) conservatively do not count: they still latch
   the remaining bits. *)
let rec must_assign_set (s : Elab.estmt) : Ids.t =
  match s with
  | Elab.Block ss ->
    List.fold_left (fun acc s -> Ids.union acc (must_assign_set s)) Ids.empty
      ss
  | Elab.Blocking (lv, _) | Elab.Nonblocking (lv, _) ->
    let rec full = function
      | Elab.Lnet id -> Ids.singleton id
      | Elab.Lindex _ | Elab.Lrange _ -> Ids.empty
      | Elab.Lconcat ls ->
        List.fold_left (fun acc l -> Ids.union acc (full l)) Ids.empty ls
    in
    full lv
  | Elab.If (_, t, Some e) -> Ids.inter (must_assign_set t) (must_assign_set e)
  | Elab.If (_, _, None) -> Ids.empty
  | Elab.Case (_, items, Some dflt) ->
    List.fold_left
      (fun acc (_, body) -> Ids.inter acc (must_assign_set body))
      (must_assign_set dflt) items
  | Elab.Case (_, _, None) -> Ids.empty
  | Elab.Nop -> Ids.empty

(* A concrete witness: one branch path through [s] along which [net]
   is never fully assigned, or [None] when every path assigns it.
   Used by the latch pass so findings say {e which} branch latches. *)
let missing_path (s : Elab.estmt) (net : int) : branch list option =
  let assigns_fully stmt =
    Ids.mem net (must_assign_set stmt)
  in
  let rec search path s =
    match s with
    | Elab.Block ss ->
      if List.exists assigns_fully ss then None
      else
        (* No sibling covers the net by itself; descend into branch
           statements to refine the witness, or report this path. *)
        let rec through = function
          | [] -> Some (List.rev path)
          | stmt :: rest -> (
            match stmt with
            | Elab.If _ | Elab.Case _ -> (
              match search path stmt with
              | Some _ as w -> w
              | None -> through rest)
            | _ -> through rest)
        in
        through ss
    | Elab.Blocking _ | Elab.Nonblocking _ | Elab.Nop ->
      if assigns_fully s then None else Some (List.rev path)
    | Elab.If (c, t, e) -> (
      match search (Then_of c :: path) t with
      | Some _ as w -> w
      | None -> (
        match e with
        | None -> Some (List.rev (Else_of c :: path))
        | Some e -> search (Else_of c :: path) e))
    | Elab.Case (sel, items, dflt) -> (
      let rec arms = function
        | [] -> (
          match dflt with
          | None -> Some (List.rev (Case_default sel :: path))
          | Some d -> search (Case_default sel :: path) d)
        | (labels, body) :: rest -> (
          match search (Case_arm (sel, labels) :: path) body with
          | Some _ as w -> w
          | None -> arms rest)
      in
      arms items)
  in
  search [] s

(* ------------------------------------------------------------------ *)
(* Expression scanning helpers                                        *)
(* ------------------------------------------------------------------ *)

let rec expr_consts_acc acc (e : Elab.eexpr) =
  match e with
  | Elab.Const v -> v :: acc
  | Elab.Net _ -> acc
  | Elab.Index (_, e) | Elab.Unop (_, e) | Elab.Repeat (_, e) ->
    expr_consts_acc acc e
  | Elab.Range _ -> acc
  | Elab.Binop (_, a, b) -> expr_consts_acc (expr_consts_acc acc a) b
  | Elab.Ternary (c, a, b) ->
    expr_consts_acc (expr_consts_acc (expr_consts_acc acc c) a) b
  | Elab.Concat es -> List.fold_left expr_consts_acc acc es

let rec stmt_exprs_acc acc (s : Elab.estmt) =
  match s with
  | Elab.Block ss -> List.fold_left stmt_exprs_acc acc ss
  | Elab.Blocking (lv, e) | Elab.Nonblocking (lv, e) ->
    let rec lv_exprs acc = function
      | Elab.Lnet _ | Elab.Lrange _ -> acc
      | Elab.Lindex (_, e) -> e :: acc
      | Elab.Lconcat ls -> List.fold_left lv_exprs acc ls
    in
    e :: lv_exprs acc lv
  | Elab.If (c, t, e) ->
    let acc = stmt_exprs_acc (c :: acc) t in
    (match e with None -> acc | Some s -> stmt_exprs_acc acc s)
  | Elab.Case (sel, items, dflt) ->
    let acc =
      List.fold_left
        (fun acc (labels, body) -> stmt_exprs_acc (labels @ acc) body)
        (sel :: acc) items
    in
    (match dflt with None -> acc | Some s -> stmt_exprs_acc acc s)
  | Elab.Nop -> acc

let proc_exprs (p : Elab.process) : Elab.eexpr list =
  match p with
  | Elab.Assign (lv, e) ->
    let rec lv_exprs acc = function
      | Elab.Lnet _ | Elab.Lrange _ -> acc
      | Elab.Lindex (_, e) -> e :: acc
      | Elab.Lconcat ls -> List.fold_left lv_exprs acc ls
    in
    e :: lv_exprs [] lv
  | Elab.Comb s | Elab.Seq (_, s) -> stmt_exprs_acc [] s

let bv_has_xz v =
  let s = Avp_logic.Bv.to_string v in
  String.exists (fun c -> c = 'x' || c = 'z') s

let bv_all_z v =
  let s = Avp_logic.Bv.to_string v in
  s <> "" && String.for_all (fun c -> c = 'z') s

(* An expression that can release its drive: syntactically it can
   evaluate to all-Z.  [cond ? e : 'bz] is the canonical tri-state
   driver shape. *)
let rec can_float (e : Elab.eexpr) : bool =
  match e with
  | Elab.Const v -> bv_all_z v
  | Elab.Ternary (_, a, b) -> can_float a || can_float b
  | Elab.Concat es -> es <> [] && List.for_all can_float es
  | Elab.Repeat (_, e) -> can_float e
  | _ -> false
