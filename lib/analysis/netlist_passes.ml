(* Netlist-level analysis passes over [Elab.t], built on the
   {!Dataflow} framework.  Each pass returns plain findings; the
   {!Analysis} front end owns selection, ordering and output. *)

open Avp_hdl

let net_name (d : Elab.t) id = d.Elab.nets.(id).Elab.name

(* Declaration position when the net has one; elaboration-introduced
   nets (port connections, flattened instances) fall back to their
   first assignment site so findings stop pointing at 0:0. *)
let net_loc = Dataflow.net_loc

(* ------------------------------------------------------------------ *)
(* comb-loop: combinational cycles                                    *)
(* ------------------------------------------------------------------ *)

(* A cycle of nets through [Assign]/[Comb] processes never settles:
   the interpreter's fixpoint raises [Sim.Comb_loop] mid-run and the
   bytecode engine can silently mis-order the units.  Detect the
   cycles statically with Tarjan SCC over the combinational
   dependency graph, before any simulator is constructed. *)
let comb_loop (d : Elab.t) (infos : Dataflow.proc_info array) :
    Finding.t list =
  let g = Dataflow.comb_graph ~infos d in
  let components = Dataflow.sccs g in
  List.filter_map
    (fun comp ->
      let cyclic =
        match comp with
        | [] -> false
        | [ v ] -> Dataflow.has_self_edge g v
        | _ :: _ :: _ -> true
      in
      if not cyclic then None
      else begin
        let comp = List.sort Int.compare comp in
        let anchor = List.hd comp in
        (* Report the loop at the position of one process on the
           cycle: the first process driving the anchor net from
           within the component. *)
        let in_comp = Hashtbl.create 8 in
        List.iter (fun v -> Hashtbl.replace in_comp v ()) comp;
        let loc =
          List.fold_left
            (fun acc v ->
              match acc with
              | Some _ -> acc
              | None ->
                List.find_map
                  (fun (w, pi) ->
                    if Hashtbl.mem in_comp w then Some infos.(pi).Dataflow.loc
                    else None)
                  g.Dataflow.succs.(v))
            None comp
        in
        let names = List.map (net_name d) comp in
        let path =
          match names with
          | [ n ] -> [ n; n ]
          | ns -> ns @ [ List.hd ns ]
        in
        Some
          (Finding.make ~net_id:anchor ~net:(net_name d anchor) ?loc ~path
             Finding.Error "comb-loop"
             (Printf.sprintf
                "combinational cycle through %d net%s: the design cannot \
                 settle"
                (List.length comp)
                (if List.length comp = 1 then "" else "s")))
      end)
    components

(* ------------------------------------------------------------------ *)
(* latch: incomplete combinational assignment                         *)
(* ------------------------------------------------------------------ *)

(* A net written by an always @* process but not on every path keeps
   its old value on the uncovered paths — synthesis infers a latch.
   Nets annotated '// avp state' are excluded: the translator folds
   intentional latches into the FSM state (see [Latch]). *)
let latch (d : Elab.t) (infos : Dataflow.proc_info array) : Finding.t list =
  let out = ref [] in
  Array.iter
    (fun (info : Dataflow.proc_info) ->
      if info.Dataflow.kind = Dataflow.Kcomb then begin
        let body =
          match d.Elab.processes.(info.Dataflow.index) with
          | Elab.Comb body -> body
          | _ -> assert false
        in
        let complete = Dataflow.must_assign_set body in
        List.iter
          (fun id ->
            let net = d.Elab.nets.(id) in
            let annotated_state =
              List.exists
                (fun a ->
                  String.split_on_char ' ' a
                  |> List.filter (fun w -> w <> "")
                  |> ( = ) [ "state" ])
                net.Elab.attrs
            in
            if
              (not (Dataflow.Ids.mem id complete)) && not annotated_state
            then begin
              let why =
                match Dataflow.missing_path body id with
                | Some path -> Dataflow.path_str d path
                | None -> "on some path"
              in
              out :=
                Finding.make ~net_id:id ~net:net.Elab.name
                  ~loc:info.Dataflow.loc Finding.Warning "latch"
                  (Printf.sprintf
                     "not assigned on all paths of a combinational process \
                      (%s): a latch is inferred"
                     why)
                :: !out
            end)
          info.Dataflow.writes
      end)
    infos;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* x-source: forward taint from Z/X-capable nets to latch points      *)
(* ------------------------------------------------------------------ *)

type xz_source = {
  src_net : int;
  src_desc : string;
}

(* Bug #5's shape: a bus that can carry Z (tri-state with imperfect
   enables, an undriven wire, an explicit 'bx/'bz) feeds — possibly
   through combinational logic — a register's D input.  One glitch on
   the enable and the Z is latched into architectural state.  The
   taint runs forward over the comb dependency graph; each finding
   reports the full path so the hazard is auditable. *)
let x_source (d : Elab.t) (infos : Dataflow.proc_info array) :
    Finding.t list =
  let n = Array.length d.Elab.nets in
  (* 1. Collect sources. *)
  let sources = ref [] in
  let assign_drivers = Array.make n 0 in
  let any_writer = Array.make n false in
  Array.iter
    (fun (info : Dataflow.proc_info) ->
      List.iter
        (fun id ->
          any_writer.(id) <- true;
          if info.Dataflow.kind = Dataflow.Kassign then
            assign_drivers.(id) <- assign_drivers.(id) + 1)
        info.Dataflow.writes)
    infos;
  (* Multi-driver continuous nets: tri-state resolution can produce X
     (conflicting drivers) or Z (no driver enabled). *)
  for id = 0 to n - 1 do
    if assign_drivers.(id) > 1 then
      sources :=
        { src_net = id;
          src_desc =
            Printf.sprintf "tri-state bus (%d continuous drivers)"
              assign_drivers.(id) }
        :: !sources;
    (* Undriven wires float at Z; never-written registers stay X. *)
    if (not any_writer.(id)) && not d.Elab.top_inputs.(id) then
      (match d.Elab.nets.(id).Elab.kind with
       | Ast.Wire ->
         sources :=
           { src_net = id; src_desc = "undriven wire (floats at z)" }
           :: !sources
       | Ast.Reg ->
         sources :=
           { src_net = id;
             src_desc = "register never assigned (stays at x)" }
           :: !sources)
  done;
  (* Explicit 'bx / 'bz literals taint the nets the process writes. *)
  Array.iteri
    (fun pi p ->
      let has_xz =
        List.exists
          (fun e ->
            List.exists Dataflow.bv_has_xz (Dataflow.expr_consts_acc [] e))
          (Dataflow.proc_exprs p)
      in
      if has_xz then
        List.iter
          (fun id ->
            sources :=
              { src_net = id;
                src_desc =
                  Printf.sprintf "explicit 'bx/'bz literal (line %d)"
                    d.Elab.process_locs.(pi).Ast.line }
              :: !sources)
          (Dataflow.proc_writes p))
    d.Elab.processes;
  let sources = List.rev !sources in
  (* 2. Sequential latch points: seq process reads net -> writes reg. *)
  let seq_sinks = Array.make n [] in
  (* net id -> (reg id, process) list *)
  Array.iter
    (fun (info : Dataflow.proc_info) ->
      if info.Dataflow.kind = Dataflow.Kseq then
        List.iter
          (fun read ->
            List.iter
              (fun reg -> seq_sinks.(read) <- (reg, info) :: seq_sinks.(read))
              info.Dataflow.writes)
          info.Dataflow.reads)
    infos;
  Array.iteri (fun i l -> seq_sinks.(i) <- List.rev l) seq_sinks;
  (* 3. Forward BFS per source over comb edges, with parent chain. *)
  let g = Dataflow.comb_graph ~infos d in
  let out = ref [] in
  let reported = Hashtbl.create 16 in
  List.iter
    (fun { src_net; src_desc } ->
      let parent = Array.make n (-2) in
      (* -2 unvisited, -1 root *)
      parent.(src_net) <- -1;
      let queue = Queue.create () in
      Queue.add src_net queue;
      let rec path_to id acc =
        if parent.(id) = -1 then net_name d id :: acc
        else path_to parent.(id) (net_name d id :: acc)
      in
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun (reg, (sink : Dataflow.proc_info)) ->
            let key = (src_net, reg) in
            if not (Hashtbl.mem reported key) then begin
              Hashtbl.replace reported key ();
              let path = path_to v [ net_name d reg ] in
              out :=
                Finding.make ~net_id:reg ~net:(net_name d reg)
                  ~loc:sink.Dataflow.loc ~path Finding.Warning "x-source"
                  (Printf.sprintf
                     "sequential register can latch X/Z originating from %s \
                      (%s)"
                     (net_name d src_net) src_desc)
                :: !out
            end)
          seq_sinks.(v);
        List.iter
          (fun (w, _) ->
            if parent.(w) = -2 && w <> src_net then begin
              parent.(w) <- v;
              Queue.add w queue
            end)
          g.Dataflow.succs.(v)
      done)
    sources;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* width-mismatch                                                     *)
(* ------------------------------------------------------------------ *)

let rec lv_width (d : Elab.t) = function
  | Elab.Lnet id -> d.Elab.nets.(id).Elab.width
  | Elab.Lindex _ -> 1
  | Elab.Lrange (_, hi, lo) -> hi - lo + 1
  | Elab.Lconcat ls ->
    List.fold_left (fun acc l -> acc + lv_width d l) 0 ls

(* Effective width: like [Elab.expr_width] but constants count only
   their significant bits, so unsized literals (stored as width-32
   vectors) and parameter constants do not flood the lint. *)
let rec eff_width (d : Elab.t) (e : Elab.eexpr) : int =
  match e with
  | Elab.Const v ->
    let s = Avp_logic.Bv.to_string v in
    let n = String.length s in
    let rec first_sig i =
      if i >= n - 1 then i
      else if s.[i] = '0' then first_sig (i + 1)
      else i
    in
    n - first_sig 0
  | Elab.Net id -> d.Elab.nets.(id).Elab.width
  | Elab.Index _ -> 1
  | Elab.Range (_, hi, lo) -> hi - lo + 1
  | Elab.Unop ((Ast.Not | Ast.Uand | Ast.Uor | Ast.Uxor), _) -> 1
  | Elab.Unop ((Ast.Bnot | Ast.Neg), e) -> eff_width d e
  | Elab.Binop
      ( ( Ast.Eq | Ast.Neq | Ast.Ceq | Ast.Cneq | Ast.Lt | Ast.Le | Ast.Gt
        | Ast.Ge | Ast.Land | Ast.Lor ),
        _,
        _ ) -> 1
  | Elab.Binop ((Ast.Shl | Ast.Shr), a, _) -> eff_width d a
  | Elab.Binop (_, a, b) -> max (eff_width d a) (eff_width d b)
  | Elab.Ternary (_, a, b) -> max (eff_width d a) (eff_width d b)
  | Elab.Concat es -> List.fold_left (fun acc e -> acc + eff_width d e) 0 es
  | Elab.Repeat (n, e) -> n * eff_width d e

let is_const = function Elab.Const _ -> true | _ -> false

let width_check (d : Elab.t) (infos : Dataflow.proc_info array) :
    Finding.t list =
  let out = ref [] in
  let check_assign loc lv e =
    let lw = lv_width d lv in
    let rw = eff_width d e in
    if rw > lw then
      let id = match Elab.lv_nets lv with id :: _ -> id | [] -> -1 in
      out :=
        Finding.make ~net_id:id
          ?net:(if id >= 0 then Some (net_name d id) else None)
          ~loc Finding.Warning "width-mismatch"
          (Printf.sprintf
             "assignment truncates: rhs has %d significant bit%s, lhs has %d"
             rw
             (if rw = 1 then "" else "s")
             lw)
        :: !out
  in
  let rec check_expr loc (e : Elab.eexpr) =
    (match e with
     | Elab.Binop
         ( (Ast.Eq | Ast.Neq | Ast.Ceq | Ast.Cneq | Ast.Lt | Ast.Le | Ast.Gt
           | Ast.Ge),
           a,
           b )
       when (not (is_const a)) && not (is_const b) ->
       let wa = eff_width d a and wb = eff_width d b in
       if wa <> wb then
         out :=
           Finding.make ~loc Finding.Warning "width-mismatch"
             (Printf.sprintf
                "comparison operands have different widths (%d vs %d): %s"
                wa wb (Dataflow.expr_str d e))
           :: !out
     | _ -> ());
    match e with
    | Elab.Const _ | Elab.Net _ | Elab.Range _ -> ()
    | Elab.Index (_, e) | Elab.Unop (_, e) | Elab.Repeat (_, e) ->
      check_expr loc e
    | Elab.Binop (_, a, b) ->
      check_expr loc a;
      check_expr loc b
    | Elab.Ternary (c, a, b) ->
      check_expr loc c;
      check_expr loc a;
      check_expr loc b
    | Elab.Concat es -> List.iter (check_expr loc) es
  in
  Array.iter
    (fun (info : Dataflow.proc_info) ->
      let loc = info.Dataflow.loc in
      match d.Elab.processes.(info.Dataflow.index) with
      | Elab.Assign (lv, e) ->
        check_assign loc lv e;
        check_expr loc e
      | Elab.Comb body | Elab.Seq (_, body) ->
        Dataflow.walk_assigns body ~f:(fun _path ~blocking:_ lv e ->
            check_assign loc lv e;
            check_expr loc e)
    )
    infos;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* races: scheduling hazards between assignment sites                 *)
(* ------------------------------------------------------------------ *)

let pos_str (loc : Ast.loc) =
  Printf.sprintf "%d:%d" loc.Ast.line loc.Ast.col

(* The per-statement spans kept in [Elab.write_sites] make two
   scheduling hazards reportable with both positions:

   - sched-race: a net written by both a blocking and a nonblocking
     procedural assignment.  Whether a same-cycle reader sees the old
     or the new value depends on scheduler ordering, which the
     interpreter and the bytecode engine are free to pick differently.
   - sched-race-edge: two distinct edge-triggered processes fire on
     the same edge of the same clock and both write the net; the
     commit order of their nonblocking updates is unspecified, so the
     net's next value is whichever process the scheduler runs last.

   Continuous assignments are excluded: an [Assign] is a drive, not a
   scheduled write, and multi-driver conflicts are the domain of
   multiple-drivers / x-source. *)
let races (d : Elab.t) : Finding.t list =
  let n = Array.length d.Elab.nets in
  let blocking = Array.make n None and nonblocking = Array.make n None in
  Array.iteri
    (fun pi sites ->
      match d.Elab.processes.(pi) with
      | Elab.Assign _ -> ()
      | Elab.Comb _ | Elab.Seq _ ->
        List.iter
          (fun (id, nb, loc) ->
            let slot = if nb then nonblocking else blocking in
            if slot.(id) = None then slot.(id) <- Some loc)
          sites)
    d.Elab.write_sites;
  let out = ref [] in
  for id = 0 to n - 1 do
    match (blocking.(id), nonblocking.(id)) with
    | Some bl, Some nl ->
      out :=
        Finding.make ~net_id:id ~net:(net_name d id) ~loc:bl Finding.Warning
          "sched-race"
          (Printf.sprintf
             "blocking write at %s races the nonblocking write at %s: a \
              same-cycle reader sees either value depending on scheduling"
             (pos_str bl) (pos_str nl))
        :: !out
    | _ -> ()
  done;
  (* Same-edge dual writers: (edge, clock, process, first site). *)
  let edge_writers = Array.make n [] in
  Array.iteri
    (fun pi sites ->
      match d.Elab.processes.(pi) with
      | Elab.Seq (edges, _) ->
        List.iter
          (fun (id, _, loc) ->
            List.iter
              (fun (edge, clk) ->
                if
                  not
                    (List.exists
                       (fun (e, c, p, _) -> e = edge && c = clk && p = pi)
                       edge_writers.(id))
                then edge_writers.(id) <- (edge, clk, pi, loc) :: edge_writers.(id))
              edges)
          sites
      | _ -> ())
    d.Elab.write_sites;
  for id = 0 to n - 1 do
    let writers = List.rev edge_writers.(id) in
    let rec pair = function
      | [] -> ()
      | (e, c, _, l1) :: rest -> (
        match List.find_opt (fun (e', c', _, _) -> e' = e && c' = c) rest with
        | Some (_, _, _, l2) ->
          out :=
            Finding.make ~net_id:id ~net:(net_name d id) ~loc:l1 Finding.Error
              "sched-race-edge"
              (Printf.sprintf
                 "written at %s and %s by two processes triggered on %s %s: \
                  the nonblocking commit order is unspecified"
                 (pos_str l1) (pos_str l2)
                 (match e with Ast.Posedge -> "posedge" | Ast.Negedge -> "negedge")
                 (net_name d c))
            :: !out
        | None -> pair rest)
    in
    pair writers
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* structural: the original per-net Lint rules, migrated              *)
(* ------------------------------------------------------------------ *)

let structural (d : Elab.t) : Finding.t list =
  List.map
    (fun (f : Lint.finding) ->
      let net_id, loc =
        match f.Lint.net with
        | None -> (-1, None)
        | Some name -> (
          match Hashtbl.find_opt d.Elab.by_name name with
          | Some id -> (id, Some (net_loc d id))
          | None -> (-1, None))
      in
      let severity =
        match f.Lint.severity with
        | Lint.Warning -> Finding.Warning
        | Lint.Error -> Finding.Error
      in
      Finding.make ~net_id ?net:f.Lint.net ?loc severity f.Lint.rule
        f.Lint.message)
    (Lint.check d)
