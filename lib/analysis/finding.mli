(** Analysis findings: one value type shared by every pass, with a
    deterministic total order and text/JSON renderers. *)

open Avp_hdl

type severity = Warning | Error

type t = {
  severity : severity;
  rule : string;
  net : string option;  (** net or FSM variable name *)
  net_id : int;  (** elaborated net id, or -1 when not net-anchored *)
  loc : Ast.loc option;
  message : string;
  path : string list;  (** taint / cycle path, source first *)
}

val make :
  ?net_id:int ->
  ?net:string ->
  ?loc:Ast.loc ->
  ?path:string list ->
  severity ->
  string ->
  string ->
  t
(** [make severity rule message]. *)

val severity_rank : severity -> int
(** Errors first: [Error] is 0, [Warning] is 1. *)

val severity_string : severity -> string

val compare : t -> t -> int
(** Total order by (severity, rule, net id, net name, position,
    message) — byte-stable across runs, so golden tests and [--json]
    output never depend on pass or hash-table iteration order. *)

val sort : t list -> t list

val pp : ?file:string -> Format.formatter -> t -> unit
(** [file:LINE: severity: [rule] net message (path: a -> b)]. *)

val json_escape : string -> string

val to_json_object : ?file:string -> t -> string

val to_json : ?file:string -> t list -> string
(** An object with a ["findings"] array plus ["errors"]/["warnings"]
    counts — the machine-checkable format the CI lint gate consumes. *)
