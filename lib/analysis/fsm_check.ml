(* Model checker-lite over {!Avp_fsm.Model}.

   The transition function is a black box, so "static" here means a
   cartesian abstract interpretation: track a per-state-variable set
   of possibly-reachable values, and iterate [next] over every tuple
   in the product of those sets (times every choice combination) to a
   fixpoint.  The abstraction over-approximates the concrete reachable
   set, so every claim of the form "value v is unreachable" is sound:
   statically-unreachable is a subset of dynamically-unreachable, which
   the enumerator cross-check in the test suite verifies on pp_control.

   When the product blows past the evaluation budget — or [next]
   raises, as HDL-backed models can on abstract states the simulator
   never produces — the analysis marks itself capped and emits no
   claims at all rather than unsound ones. *)

open Avp_fsm

type result = {
  model : Model.t;
  reachable_values : bool array array;
      (* state var index -> value -> possibly reachable *)
  sinks : int array list;  (* abstract tuples every choice maps to self *)
  capped : bool;
  evals : int;  (* transition-function evaluations performed *)
  findings : Finding.t list;
}

let analyze ?(max_evals = 2_000_000) (m : Model.t) : result =
  let nvars = Array.length m.Model.state_vars in
  let ncvars = Array.length m.Model.choice_vars in
  let card i = Model.card m.Model.state_vars.(i) in
  let reach = Array.init nvars (fun i -> Array.make (card i) false) in
  Array.iteri (fun i v -> reach.(i).(v) <- true) m.Model.reset;
  let nchoices = Model.num_choices m in
  let choices = Array.init nchoices (Model.choice_of_index m) in
  (* [zero_proj.(k).(c)]: choice index [c] with coordinate [k] forced
     to 0 — used to detect choice variables with no observable
     effect. *)
  let zero_proj =
    Array.init ncvars (fun k ->
        Array.init nchoices (fun c ->
            let cv = Array.copy choices.(c) in
            cv.(k) <- 0;
            Model.index_of_choice m cv))
  in
  let seen : (int array, unit) Hashtbl.t = Hashtbl.create 1024 in
  let capped = ref false in
  let evals = ref 0 in
  let var_affects = Array.make ncvars false in
  (* Partition of choice indices by observable behaviour, refined per
     explored tuple; two indices in one final class are
     indistinguishable everywhere explored. *)
  let cls = Array.make (max nchoices 1) 0 in
  let nclasses = ref (min nchoices 1) in
  let sinks = ref [] in
  let expand tuple =
    if !evals + nchoices > max_evals then capped := true
    else begin
      let succ = Array.make nchoices [||] in
      (try
         for c = 0 to nchoices - 1 do
           succ.(c) <- m.Model.next tuple choices.(c);
           incr evals
         done
       with Stack_overflow | Out_of_memory as e -> raise e
          | _ -> capped := true);
      if not !capped then begin
        Array.iter
          (fun s ->
            Array.iteri
              (fun i v ->
                if v >= 0 && v < card i then reach.(i).(v) <- true)
              s)
          succ;
        if nchoices > 0 && Array.for_all (fun s -> s = tuple) succ then
          sinks := Array.copy tuple :: !sinks;
        for k = 0 to ncvars - 1 do
          if not var_affects.(k) then
            (try
               for c = 0 to nchoices - 1 do
                 if succ.(c) <> succ.(zero_proj.(k).(c)) then begin
                   var_affects.(k) <- true;
                   raise Exit
                 end
               done
             with Exit -> ())
        done;
        if nchoices > 1 then begin
          let tbl = Hashtbl.create 16 in
          let counter = ref 0 in
          let next_cls = Array.make nchoices 0 in
          for c = 0 to nchoices - 1 do
            let key = (cls.(c), Array.to_list succ.(c)) in
            let id =
              match Hashtbl.find_opt tbl key with
              | Some id -> id
              | None ->
                let id = !counter in
                incr counter;
                Hashtbl.add tbl key id;
                id
            in
            next_cls.(c) <- id
          done;
          Array.blit next_cls 0 cls 0 nchoices;
          nclasses := !counter
        end
      end
    end
  in
  (* Fixpoint: each round walks the product of the current value
     sets; values discovered mid-round surface as fresh tuples next
     round.  A round with no new tuple is the fixpoint. *)
  let progressed = ref true in
  while !progressed && not !capped do
    progressed := false;
    let values =
      Array.init nvars (fun i ->
          let vs = ref [] in
          for v = card i - 1 downto 0 do
            if reach.(i).(v) then vs := v :: !vs
          done;
          Array.of_list !vs)
    in
    let idx = Array.make nvars 0 in
    let tuple = Array.make nvars 0 in
    let more = ref true in
    while !more && not !capped do
      for i = 0 to nvars - 1 do
        tuple.(i) <- values.(i).(idx.(i))
      done;
      if not (Hashtbl.mem seen tuple) then begin
        Hashtbl.replace seen (Array.copy tuple) ();
        progressed := true;
        expand tuple
      end;
      let rec bump i =
        if i < 0 then more := false
        else begin
          idx.(i) <- idx.(i) + 1;
          if idx.(i) >= Array.length values.(i) then begin
            idx.(i) <- 0;
            bump (i - 1)
          end
        end
      in
      bump (nvars - 1)
    done
  done;
  let fs = ref [] in
  if !capped then
    fs :=
      [ Finding.make Finding.Warning "fsm-check-capped"
          (Printf.sprintf
             "abstract exploration hit its budget or the transition \
              function raised (%d evaluations done): FSM checks skipped \
              to avoid unsound claims"
             !evals) ]
  else begin
    Array.iteri
      (fun i (var : Model.var) ->
        Array.iteri
          (fun v r ->
            if not r then
              fs :=
                Finding.make ~net_id:i ~net:var.Model.name Finding.Warning
                  "fsm-unreachable"
                  (Printf.sprintf
                     "state variable can never take value '%s' (statically \
                      unreachable from reset)"
                     var.Model.values.(v))
                :: !fs)
          reach.(i))
      m.Model.state_vars;
    let sinks_l = List.rev !sinks in
    let nsinks = List.length sinks_l in
    List.iteri
      (fun k s ->
        if k < 5 then
          fs :=
            Finding.make ~net_id:k Finding.Warning "fsm-sink"
              (Format.asprintf
                 "sink state {%a}: every choice combination maps it to \
                  itself%s"
                 (Model.pp_state m) s
                 (if nsinks > 5 && k = 4 then
                    Printf.sprintf " (and %d more sinks)" (nsinks - 5)
                  else ""))
            :: !fs)
      sinks_l;
    Array.iteri
      (fun k (cv : Model.var) ->
        if (not var_affects.(k)) && Model.card cv > 1 then
          fs :=
            Finding.make ~net_id:k ~net:cv.Model.name Finding.Warning
              "fsm-dead-choice"
              "choice variable never affects any successor state: the \
               nondeterminism is vacuous"
            :: !fs)
      m.Model.choice_vars;
    if
      nchoices > 1
      && !nclasses < nchoices
      && Array.for_all Fun.id var_affects
    then
      fs :=
        Finding.make Finding.Warning "fsm-choice-overlap"
          (Printf.sprintf
             "only %d of %d choice combinations are distinguishable: \
              distinct nondeterministic choices overlap in behaviour"
             !nclasses nchoices)
        :: !fs
  end;
  {
    model = m;
    reachable_values = reach;
    sinks = List.rev !sinks;
    capped = !capped;
    evals = !evals;
    findings = Finding.sort !fs;
  }

let findings r = r.findings
