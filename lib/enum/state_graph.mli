(** Full state enumeration (step 2 of the paper's methodology).

    Breadth-first search from the reset state; at every state all
    combinations of choice-variable values are permuted, "resulting in
    the discovery of all reachable states, no matter how improbable a
    sequence of interactions is needed to reach it".

    Each graph edge carries the choice combination (the {e condition})
    that caused the transition.  By default, as in the paper, "only
    one is recorded" per (src, dst) pair — the first condition tried.
    [~all_conditions:true] applies the fix discussed in Section 4,
    recording every distinct condition as a parallel edge (this is how
    the Figure 4.2 class of bug becomes detectable).

    Enumeration can run on several OCaml domains
    ([enumerate ?domains]); the result — state numbering, adjacency,
    edge counts — is bit-identical to the sequential one for any
    domain count.  See DESIGN.md, "Parallel enumeration". *)

open Avp_fsm

type stats = {
  num_states : int;
  num_edges : int;
  state_bits : int;  (** the paper's "number of bits per state" *)
  elapsed_s : float;
  heap_mb : float;  (** major-heap size at completion, in MB *)
  domains : int;  (** domains actually used (1 = sequential) *)
  level_times : (int * float) array;
      (** per BFS batch: (sources expanded, seconds) *)
  pruned : int;
      (** successor occurrences the [admit] filter rejected (0 without
          a filter — and 0 with a sound one: that is the
          cross-validation invariant) *)
}

type index
(** Packed-valuation -> state-id hash index, built during
    enumeration. *)

type t = {
  model : Model.t;
  states : int array array;  (** state id -> valuation; id 0 is reset *)
  adj : (int * int) array array;
      (** state id -> ordered (dst, choice index) pairs *)
  stats : stats;
  index : index;
}

exception Too_many_states of int

val default_domains : unit -> int
(** The [AVP_DOMAINS] environment variable when set to a positive
    integer, else [Domain.recommended_domain_count ()]. *)

val enumerate :
  ?all_conditions:bool ->
  ?max_states:int ->
  ?domains:int ->
  ?parallel_threshold:int ->
  ?progress:Avp_obs.Progress.t ->
  ?admit:(int array -> bool) ->
  Model.t ->
  t
(** [domains] defaults to [default_domains ()] and is clamped to 1
    when the model is not {!Model.t.parallel_safe}.

    [admit] is a frontier filter: a successor valuation not already
    interned is discarded (counted in [stats.pruned]) unless the
    filter accepts it.  A {e sound} filter — one accepting every truly
    reachable state, such as the abstract interpreter's proven state
    invariants ([Avp_analysis.Absint.admit]) — never changes the
    graph; [stats.pruned] staying 0 is the cross-validation check.
    The filter runs on the deterministic merge side, so results and
    counts are identical for any domain count.  The reset state is
    always admitted.

    [parallel_threshold] (default 4096): even with [domains > 1],
    enumeration starts sequentially and only switches to the
    batch-parallel path once this many states have been discovered —
    on small graphs the domain spawn and merge overhead costs more
    than the expansion itself.  The result is bit-identical for any
    threshold; [stats.domains] reports 1 when the parallel path never
    engaged.

    @raise Too_many_states when the [max_states] bound (default
    5_000_000) is exceeded.
    @raise Invalid_argument when a state variable's cardinality
    exceeds the packed-key limit of 65536. *)

val reset_id : t -> int
(** Always 0. *)

val num_states : t -> int
val num_edges : t -> int

val find_state : t -> int array -> int option
(** Look up a state id by valuation — a constant-time probe of the
    enumeration-time index. *)

val make_index : t -> int array -> int option
(** Constant-time valuation lookup (reuses the enumeration-time
    index; kept for compatibility with [find_state]-style tooling). *)

val out_degree : t -> int -> int

val edge_offsets : t -> int array
(** Prefix sums assigning each edge a dense global index: edge [k] of
    state [s] has index [offsets.(s) + k]. *)

val pp_stats : Format.formatter -> stats -> unit

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering (small graphs only). *)

val value_coverage : t -> bool array array
(** [state var index -> value -> some enumerated state holds it] — the
    dynamic ground truth the static analyser's per-variable
    reachability claims are checked against (statically-unreachable
    must be a subset of dynamically-unreachable). *)

val absorbing_states : t -> int list
(** States every one of whose transitions self-loops: the machine can
    never leave them.  Coverage-driven validation does not check
    liveness, so deadlocks hide in plain sight unless surfaced —
    report them alongside enumeration statistics. *)

val is_deterministic_image : t -> bool
(** True when no state has two outgoing edges with the same recorded
    condition — a sanity check of the first-condition labelling. *)
