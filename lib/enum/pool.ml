type t = {
  domains : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable job : (int -> unit) option;
  mutable round : int;
  mutable pending : int;
  mutable stop : bool;
  mutable failure : exn option;
  mutable workers : unit Domain.t array;
}

let record_failure t e =
  Mutex.lock t.mutex;
  if t.failure = None then t.failure <- Some e;
  Mutex.unlock t.mutex

let worker t slot =
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && t.round = !last do
      Condition.wait t.start t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      last := t.round;
      let job = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.mutex;
      (try job slot with e -> record_failure t e);
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~domains =
  let domains = max 1 domains in
  let t =
    {
      domains;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      job = None;
      round = 0;
      pending = 0;
      stop = false;
      failure = None;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker t (i + 1)));
  t

let size t = t.domains

let run t f =
  if t.domains = 1 then f 0
  else begin
    Mutex.lock t.mutex;
    t.job <- Some f;
    t.round <- t.round + 1;
    t.pending <- t.domains - 1;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    (* The caller is slot 0, so every domain including this one does a
       share of the work. *)
    (try f 0 with e -> record_failure t e);
    Mutex.lock t.mutex;
    while t.pending > 0 do
      Condition.wait t.finished t.mutex
    done;
    t.job <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with Some e -> raise e | None -> ()
  end

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
