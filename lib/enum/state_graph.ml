open Avp_fsm
module Obs = Avp_obs.Obs

type stats = {
  num_states : int;
  num_edges : int;
  state_bits : int;
  elapsed_s : float;
  heap_mb : float;
  domains : int;
  level_times : (int * float) array;
  pruned : int;
}

(* ------------------------------------------------------------------ *)
(* Packed state keys                                                  *)
(* ------------------------------------------------------------------ *)

(* Pack a valuation into a byte buffer; one byte per variable when the
   domain fits, two otherwise.  Returns the key size and an
   allocation-free [pack_into]. *)
let make_packer (model : Model.t) =
  let wide =
    Array.map
      (fun v ->
        let c = Model.card v in
        if c > 65536 then
          invalid_arg
            (Printf.sprintf
               "State_graph: variable %s has cardinality %d, beyond the \
                two-byte packed-key limit of 65536"
               v.Model.name c);
        c > 256)
      model.Model.state_vars
  in
  let key_size =
    Array.fold_left (fun acc w -> acc + if w then 2 else 1) 0 wide
  in
  let pack_into (valuation : int array) (b : Bytes.t) =
    let pos = ref 0 in
    Array.iteri
      (fun i v ->
        if Array.unsafe_get wide i then begin
          Bytes.unsafe_set b !pos (Char.unsafe_chr (v land 0xff));
          Bytes.unsafe_set b (!pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
          pos := !pos + 2
        end
        else begin
          Bytes.unsafe_set b !pos (Char.unsafe_chr (v land 0xff));
          incr pos
        end)
      valuation
  in
  (key_size, pack_into)

(* ------------------------------------------------------------------ *)
(* Sharded intern table                                               *)
(* ------------------------------------------------------------------ *)

(* Packed key -> state id.  Sharded by the top bits of the structural
   hash (the low bits index buckets inside each [Hashtbl], so reusing
   them for shard selection would leave most buckets empty).  The
   table is read-mostly: during a parallel level every domain probes
   it freely while nobody writes; all insertions happen in the
   single-threaded merge between levels, so no locking is needed. *)

let shard_bits = 6

type index = {
  key_size : int;
  shards : (Bytes.t, int) Hashtbl.t array;
}

let index_create key_size =
  {
    key_size;
    shards = Array.init (1 lsl shard_bits) (fun _ -> Hashtbl.create 256);
  }

let shard_of idx key =
  (* Hashtbl.hash yields 30 bits; take the top ones. *)
  Array.unsafe_get idx.shards (Hashtbl.hash key lsr (30 - shard_bits))

let index_find idx key = Hashtbl.find_opt (shard_of idx key) key
let index_add idx key id = Hashtbl.replace (shard_of idx key) key id

type t = {
  model : Model.t;
  states : int array array;
  adj : (int * int) array array;
  stats : stats;
  index : index;
}

exception Too_many_states of int

(* Growable array of states. *)
module Dyn = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 1024 dummy; len = 0; dummy }

  let push t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) t.dummy in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let get t i = t.data.(i)
  let to_array t = Array.sub t.data 0 t.len
end

let default_domains () =
  match Sys.getenv_opt "AVP_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Upper bound on the successor slots buffered per parallel batch —
   bounds the merge arrays to a few MB regardless of model size. *)
let batch_edge_cap = 1 lsl 20

(* Graphs below this many states enumerate sequentially even when
   several domains were requested: spawning domains and running the
   batch merge costs more than the expansion itself on small graphs
   (the default PP preset's 649 states ran at 0.64x/0.44x of the
   sequential time on 2/4 domains).  Enumeration that outgrows the
   threshold switches to the parallel path mid-run, from the same
   frontier — the result is bit-identical either way. *)
let default_parallel_threshold = 4096

let enumerate ?(all_conditions = false) ?(max_states = 5_000_000) ?domains
    ?(parallel_threshold = default_parallel_threshold) ?progress ?admit
    (model : Model.t) =
  let t0 = Obs.Clock.now_s () in
  (* Telemetry is per BFS level / batch, never per state: with spans
     off this adds one Atomic.get per level, so -j throughput is
     unchanged (the 3%-overhead budget in DESIGN.md). *)
  let level_span ?(extra = []) kind ~sources ~dur_s =
    if Obs.enabled () then
      Obs.complete ~cat:"enum" kind ~dur_s
        ~args:(("sources", Obs.Int sources) :: extra);
    match progress with
    | Some p -> Avp_obs.Progress.tick ~n:sources p
    | None -> ()
  in
  let requested =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  (* Transition functions that are not safe to share (e.g. they step a
     single HDL simulator instance) enumerate sequentially. *)
  let domains = if model.Model.parallel_safe then requested else 1 in
  let nvars = Array.length model.Model.reset in
  let key_size, pack_into = make_packer model in
  let index = index_create key_size in
  let states = Dyn.create [||] in
  let adj = Dyn.create [||] in
  let num_choices = Model.num_choices model in
  let choices =
    Array.init num_choices (fun i -> Model.choice_of_index model i)
  in
  let edge_count = ref 0 in
  let level_times = ref [] in
  (* Frontier filter: a successor unknown to the intern table is only
     admitted (interned, edge recorded) when [admit] accepts its
     valuation.  With a sound filter — one accepting every truly
     reachable state, e.g. {!Avp_analysis.Absint.admit} — the graph is
     unchanged and [stats.pruned] stays 0; the counter existing is the
     cross-validation hook.  Checked only on the deterministic merge
     side, so the count is identical for any domain count.  The reset
     state is always admitted. *)
  let pruned = ref 0 in
  let admits v = match admit with None -> true | Some f -> f v in
  (* Intern the reset state as id 0. *)
  let reset = Array.copy model.Model.reset in
  let reset_key = Bytes.create key_size in
  pack_into reset reset_key;
  index_add index reset_key 0;
  Dyn.push states reset;
  (* Merge-side scratch, shared by both paths (single-threaded use). *)
  let merge_key = Bytes.create key_size in
  let seen_dst : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  let record_edge dst ci =
    let record =
      if all_conditions then true
      else if Hashtbl.mem seen_dst dst then false
      else begin
        Hashtbl.add seen_dst dst ();
        true
      end
    in
    if record then begin
      out := (dst, ci) :: !out;
      incr edge_count
    end
  in
  (* Intern a freshly discovered valuation during a merge; takes
     ownership of [valuation] (already a private copy). *)
  let intern_new valuation =
    pack_into valuation merge_key;
    match index_find index merge_key with
    | Some id -> id
    | None ->
      let id = states.Dyn.len in
      if id >= max_states then raise (Too_many_states max_states);
      index_add index (Bytes.copy merge_key) id;
      Dyn.push states valuation;
      id
  in
  (* ---------------------------------------------------------------- *)
  (* Sequential fast path: the reference semantics.  BFS in id order; *)
  (* successors append at the end, so ids are discovery order.        *)
  (* ---------------------------------------------------------------- *)
  let frontier = ref 0 in
  let run_sequential ~stop_at () =
    let nxt = Array.make nvars 0 in
    let key = Bytes.create key_size in
    while !frontier < states.Dyn.len && states.Dyn.len < stop_at do
      let level_end = states.Dyn.len in
      let level_size = level_end - !frontier in
      let lt0 = Obs.Clock.now_s () in
      while !frontier < level_end do
        let src = !frontier in
        incr frontier;
        let cur = Dyn.get states src in
        Hashtbl.reset seen_dst;
        out := [];
        for ci = 0 to num_choices - 1 do
          model.Model.next_into cur choices.(ci) nxt;
          pack_into nxt key;
          match index_find index key with
          | Some id -> record_edge id ci
          | None ->
            if admits nxt then begin
              let id = states.Dyn.len in
              if id >= max_states then raise (Too_many_states max_states);
              index_add index (Bytes.copy key) id;
              Dyn.push states (Array.copy nxt);
              record_edge id ci
            end
            else incr pruned
        done;
        Dyn.push adj (Array.of_list (List.rev !out))
      done;
      let dt = Obs.Clock.now_s () -. lt0 in
      level_times := (level_size, dt) :: !level_times;
      level_span "enum.level" ~sources:level_size ~dur_s:dt
    done
  in
  (* ---------------------------------------------------------------- *)
  (* Parallel path: batch-synchronous BFS.  Each batch of pending     *)
  (* sources is split across the domains; every domain expands its    *)
  (* slice against the frozen intern table into private buffers, and  *)
  (* a deterministic single-threaded merge — in (source id, choice    *)
  (* index) order, exactly the sequential processing order — assigns  *)
  (* ids to the genuinely new states.  State numbering, [adj] and     *)
  (* [stats.num_edges] are therefore identical to the sequential      *)
  (* result for any domain count.                                     *)
  (* ---------------------------------------------------------------- *)
  let run_parallel pool =
    let batch_cap = max domains (max 1 (batch_edge_cap / max 1 num_choices)) in
    (* Batch ids link the [enum.batch] parent span to the per-domain
       [enum.shard] spans (and, via flow_out/flow_in, draw handoff
       arrows in the Chrome trace viewer). *)
    let batch_no = ref 0 in
    (* dst_ids.(k) >= 0: successor already interned before this batch.
       -1: unknown to the frozen table; its valuation is in
       new_vals.(k), resolved (or assigned a fresh id) during merge.
       Grown to the largest batch actually seen, bounded by
       [batch_cap * num_choices] slots. *)
    let dst_ids = ref (Array.make (min 1024 batch_cap * num_choices) 0) in
    let new_vals : int array array ref =
      ref (Array.make (Array.length !dst_ids) [||])
    in
    (* Picks up where the sequential warm-up left off: [adj] already
       holds one row per source below [!frontier]. *)
    let processed = ref !frontier in
    while !processed < states.Dyn.len do
      let lo = !processed in
      let hi = min states.Dyn.len (lo + batch_cap) in
      let cnt = hi - lo in
      if cnt * num_choices > Array.length !dst_ids then begin
        dst_ids := Array.make (cnt * num_choices) 0;
        new_vals := Array.make (cnt * num_choices) [||]
      end;
      let dst_ids = !dst_ids and new_vals = !new_vals in
      let batch = !batch_no in
      incr batch_no;
      let lt0 = Obs.Clock.now_s () in
      let traced = Obs.enabled () in
      Pool.run pool (fun slot ->
          let st0 = if traced then Obs.Clock.now_s () else 0. in
          let j0 = cnt * slot / domains in
          let j1 = cnt * (slot + 1) / domains in
          let nxt = Array.make nvars 0 in
          let key = Bytes.create key_size in
          for j = j0 to j1 - 1 do
            let cur = Dyn.get states (lo + j) in
            let base = j * num_choices in
            for ci = 0 to num_choices - 1 do
              model.Model.next_into cur choices.(ci) nxt;
              pack_into nxt key;
              match index_find index key with
              | Some id -> Array.unsafe_set dst_ids (base + ci) id
              | None ->
                Array.unsafe_set dst_ids (base + ci) (-1);
                Array.unsafe_set new_vals (base + ci) (Array.copy nxt)
            done
          done;
          (* One retrospective span per domain per batch, emitted on
             the worker so its [dom] is the expanding domain — the
             profiler's busy-timeline unit. *)
          if traced then
            Obs.complete ~cat:"enum" "enum.shard"
              ~dur_s:(Obs.Clock.now_s () -. st0)
              ~args:
                [
                  ("batch", Obs.Int batch);
                  ("slot", Obs.Int slot);
                  ("sources", Obs.Int (j1 - j0));
                  ("flow_in", Obs.Int batch);
                ]);
      for j = 0 to cnt - 1 do
        let base = j * num_choices in
        Hashtbl.reset seen_dst;
        out := [];
        for ci = 0 to num_choices - 1 do
          let d = dst_ids.(base + ci) in
          if d >= 0 then record_edge d ci
          else begin
            let v = new_vals.(base + ci) in
            new_vals.(base + ci) <- [||];
            if admits v then record_edge (intern_new v) ci
            else incr pruned
          end
        done;
        Dyn.push adj (Array.of_list (List.rev !out))
      done;
      processed := hi;
      let dt = Obs.Clock.now_s () -. lt0 in
      level_times := (cnt, dt) :: !level_times;
      level_span "enum.batch" ~sources:cnt ~dur_s:dt
        ~extra:[ ("batch", Obs.Int batch); ("flow_out", Obs.Int batch) ]
    done
  in
  let used_domains = ref 1 in
  if domains = 1 then run_sequential ~stop_at:max_int ()
  else begin
    run_sequential ~stop_at:(max 1 parallel_threshold) ();
    if !frontier < states.Dyn.len then begin
      used_domains := domains;
      Pool.with_pool ~domains run_parallel
    end
  end;
  let elapsed_s = Obs.Clock.now_s () -. t0 in
  if Obs.enabled () then begin
    Obs.complete ~cat:"enum" "enum.run" ~dur_s:elapsed_s
      ~args:
        [
          ("states", Obs.Int states.Dyn.len);
          ("edges", Obs.Int !edge_count);
          ("domains", Obs.Int !used_domains);
        ];
    Obs.incr ~by:states.Dyn.len "enum.states";
    Obs.incr ~by:!edge_count "enum.edges"
  end;
  let heap_mb =
    let st = Gc.quick_stat () in
    float_of_int st.Gc.heap_words *. float_of_int (Sys.word_size / 8)
    /. (1024. *. 1024.)
  in
  {
    model;
    states = Dyn.to_array states;
    adj = Dyn.to_array adj;
    index;
    stats =
      {
        num_states = states.Dyn.len;
        num_edges = !edge_count;
        state_bits = Model.state_bits model;
        elapsed_s;
        heap_mb;
        domains = !used_domains;
        level_times = Array.of_list (List.rev !level_times);
        pruned = !pruned;
      };
  }

let reset_id _ = 0
let num_states t = Array.length t.states
let num_edges t = t.stats.num_edges

let lookup_valuation t valuation =
  let key = Bytes.create t.index.key_size in
  let _, pack_into = make_packer t.model in
  pack_into valuation key;
  index_find t.index key

let find_state t valuation = lookup_valuation t valuation

let make_index t =
  let _, pack_into = make_packer t.model in
  fun valuation ->
    let key = Bytes.create t.index.key_size in
    pack_into valuation key;
    index_find t.index key

let out_degree t s = Array.length t.adj.(s)

let edge_offsets t =
  let n = num_states t in
  let offsets = Array.make (n + 1) 0 in
  for s = 0 to n - 1 do
    offsets.(s + 1) <- offsets.(s) + Array.length t.adj.(s)
  done;
  offsets

let pp_stats ppf s =
  Format.fprintf ppf
    "states=%d bits/state=%d edges=%d time=%.2fs heap=%.1fMB domains=%d \
     levels=%d"
    s.num_states s.state_bits s.num_edges s.elapsed_s s.heap_mb s.domains
    (Array.length s.level_times);
  if s.pruned > 0 then Format.fprintf ppf " pruned=%d" s.pruned

let pp_dot ppf t =
  Format.fprintf ppf "@[<v 2>digraph %s {@," t.model.Model.model_name;
  Array.iteri
    (fun id valuation ->
      Format.fprintf ppf "s%d [label=\"%a\"];@," id
        (Model.pp_state t.model) valuation)
    t.states;
  Array.iteri
    (fun src out ->
      Array.iter
        (fun (dst, ci) ->
          Format.fprintf ppf "s%d -> s%d [label=\"%a\"];@," src dst
            (Model.pp_choice t.model)
            (Model.choice_of_index t.model ci))
        out)
    t.adj;
  Format.fprintf ppf "@]}@,"

let value_coverage t =
  let cov =
    Array.map
      (fun v -> Array.make (Model.card v) false)
      t.model.Model.state_vars
  in
  Array.iter
    (fun st -> Array.iteri (fun i v -> cov.(i).(v) <- true) st)
    t.states;
  cov

let absorbing_states t =
  let out = ref [] in
  Array.iteri
    (fun s edges ->
      if Array.length edges > 0
         && Array.for_all (fun (dst, _) -> dst = s) edges
      then out := s :: !out)
    t.adj;
  List.rev !out

let is_deterministic_image t =
  Array.for_all
    (fun out ->
      let seen = Hashtbl.create 8 in
      Array.for_all
        (fun (_, ci) ->
          if Hashtbl.mem seen ci then false
          else begin
            Hashtbl.add seen ci ();
            true
          end)
        out)
    t.adj
